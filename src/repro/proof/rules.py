"""The proof rule set Delta: predicate calculus + two's-complement arithmetic.

Each rule is registered in :data:`RULES` with a checking function that,
given the *goal* formula, the proof node's parameters, and the current
hypotheses, either raises :class:`repro.errors.ProofError` or returns the
list of premise obligations ``(subgoal, extra_hypotheses)``.  The checker in
:mod:`repro.proof.checker` drives these top-down, so a rule function fully
determines what its premises must prove — there is no search at checking
time, which is what makes validation "simple, allowing fast and
easy-to-trust implementations" (paper §1).

Two rule families:

**Predicate calculus** — ``truei``, ``andi``/``andel``/``ander``,
``impi``/``impe``, ``alli``/``alle``, ``ori1``/``ori2``/``ore``,
``falsee``, ``hyp``, and the equality rules ``eqrefl``/``eqsym``/
``eqtrans``/``eqsub``.  These are the standard natural-deduction rules; the
paper shows ``impe`` (implication elimination) explicitly.

**Two's-complement arithmetic** — axiom schemas with computable side
conditions, the analogue of the paper's rule
``e1 (+) e2 (-) e2 = e1  if  e1 mod 2^64 = e1``.  The side conditions only
ever compute on *literal* parts of the goal (or run the Fourier-Motzkin
refutation check for ``linarith``), so checking stays deterministic and
fast.  Soundness of every schema over random instantiations is
property-tested in ``tests/proof/test_rule_soundness.py``.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import ProofError
from repro.logic.formulas import (
    And,
    Atom,
    Falsity,
    Forall,
    Formula,
    Implies,
    Or,
    Truth,
    eq,
    formula_vars,
)
from repro.logic.subst import subst_formula
from repro.logic.terms import (
    App,
    Int,
    Term,
    Var,
    WORD_MOD,
    eval_term,
    term_vars,
)

#: Premise obligations returned by a rule: (subgoal, extra hypotheses).
Obligation = tuple[Formula, dict[str, Formula]]
Hyps = Mapping[str, Formula]
RuleFn = Callable[[Formula, tuple, Hyps], list[Obligation]]

RULES: dict[str, RuleFn] = {}


def _rule(name: str) -> Callable[[RuleFn], RuleFn]:
    def register(fn: RuleFn) -> RuleFn:
        RULES[name] = fn
        return fn
    return register


def _fail(rule: str, message: str) -> ProofError:
    return ProofError(f"{rule}: {message}")


def _expect_atom(rule: str, goal: Formula, preds: tuple[str, ...]) -> Atom:
    if not isinstance(goal, Atom) or goal.pred not in preds:
        raise _fail(rule, f"goal must be a {'/'.join(preds)} atom")
    return goal


def _expect_params(rule: str, params: tuple, count: int) -> None:
    if len(params) != count:
        raise _fail(rule, f"expected {count} parameters, got {len(params)}")


# ---------------------------------------------------------------------------
# Predicate calculus
# ---------------------------------------------------------------------------

@_rule("truei")
def _truei(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``|- true``."""
    if not isinstance(goal, Truth):
        raise _fail("truei", "goal is not true")
    return []


@_rule("andi")
def _andi(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """From ``A`` and ``B`` conclude ``A /\\ B``."""
    if not isinstance(goal, And):
        raise _fail("andi", "goal is not a conjunction")
    return [(goal.left, {}), (goal.right, {})]


@_rule("andel")
def _andel(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """From ``A /\\ B`` conclude ``A``; params: (B,)."""
    _expect_params("andel", params, 1)
    right = params[0]
    return [(And(goal, right), {})]


@_rule("ander")
def _ander(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """From ``A /\\ B`` conclude ``B``; params: (A,)."""
    _expect_params("ander", params, 1)
    left = params[0]
    return [(And(left, goal), {})]


@_rule("impi")
def _impi(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """Prove ``A => B`` by proving ``B`` under hypothesis ``A``.

    params: (label,) — the fresh name binding the hypothesis.
    """
    _expect_params("impi", params, 1)
    label = params[0]
    if not isinstance(goal, Implies):
        raise _fail("impi", "goal is not an implication")
    if not isinstance(label, str):
        raise _fail("impi", "hypothesis label must be a string")
    if label in hyps:
        raise _fail("impi", f"hypothesis label {label!r} already in scope")
    return [(goal.right, {label: goal.left})]


@_rule("impe")
def _impe(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """Modus ponens: from ``A => B`` and ``A`` conclude ``B``.

    params: (A,) — the antecedent, which the goal alone cannot determine.
    """
    _expect_params("impe", params, 1)
    antecedent = params[0]
    return [(Implies(antecedent, goal), {}), (antecedent, {})]


@_rule("alli")
def _alli(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """Prove ``ALL x. P`` by proving ``P[x := e]`` for a fresh eigenvariable.

    params: (eigen,) — the eigenvariable name.  The side condition is the
    usual one: the eigenvariable may occur neither in any hypothesis in
    scope nor in the goal itself.
    """
    _expect_params("alli", params, 1)
    eigen = params[0]
    if not isinstance(goal, Forall):
        raise _fail("alli", "goal is not universally quantified")
    if not isinstance(eigen, str):
        raise _fail("alli", "eigenvariable name must be a string")
    for label, hypothesis in hyps.items():
        if eigen in formula_vars(hypothesis):
            raise _fail("alli",
                        f"eigenvariable {eigen!r} occurs in hypothesis "
                        f"{label!r}")
    if eigen in formula_vars(goal):
        raise _fail("alli", f"eigenvariable {eigen!r} occurs free in goal")
    body = subst_formula(goal.body, {goal.var: Var(eigen)})
    return [(body, {})]


@_rule("alle")
def _alle(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """From ``ALL x. P`` conclude ``P[x := t]``.

    params: (forall_formula, t) — the quantified premise and the witness.
    """
    _expect_params("alle", params, 2)
    source, term = params
    if not isinstance(source, Forall):
        raise _fail("alle", "premise parameter is not a Forall")
    expected = subst_formula(source.body, {source.var: term})
    if expected != goal:
        raise _fail("alle", "goal is not the stated instantiation")
    return [(source, {})]


@_rule("ori1")
def _ori1(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """From ``A`` conclude ``A \\/ B``."""
    if not isinstance(goal, Or):
        raise _fail("ori1", "goal is not a disjunction")
    return [(goal.left, {})]


@_rule("ori2")
def _ori2(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """From ``B`` conclude ``A \\/ B``."""
    if not isinstance(goal, Or):
        raise _fail("ori2", "goal is not a disjunction")
    return [(goal.right, {})]


@_rule("ore")
def _ore(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """Case split: from ``A \\/ B``, ``A => C`` and ``B => C`` conclude ``C``.

    params: (A, B).
    """
    _expect_params("ore", params, 2)
    left, right = params
    return [(Or(left, right), {}),
            (Implies(left, goal), {}),
            (Implies(right, goal), {})]


@_rule("falsee")
def _falsee(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """Ex falso quodlibet."""
    return [(Falsity(), {})]


@_rule("hyp")
def _hyp(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """Use a hypothesis in scope; params: (label,)."""
    _expect_params("hyp", params, 1)
    label = params[0]
    if label not in hyps:
        raise _fail("hyp", f"no hypothesis named {label!r} in scope")
    if hyps[label] != goal:
        raise _fail("hyp", f"hypothesis {label!r} does not match the goal")
    return []


# ---------------------------------------------------------------------------
# Equality
# ---------------------------------------------------------------------------

@_rule("eqrefl")
def _eqrefl(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``|- t = t``."""
    atom = _expect_atom("eqrefl", goal, ("eq",))
    if atom.args[0] != atom.args[1]:
        raise _fail("eqrefl", "sides are not structurally identical")
    return []


@_rule("eqsym")
def _eqsym(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """From ``b = a`` conclude ``a = b``."""
    atom = _expect_atom("eqsym", goal, ("eq",))
    return [(eq(atom.args[1], atom.args[0]), {})]


@_rule("eqtrans")
def _eqtrans(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """From ``a = m`` and ``m = b`` conclude ``a = b``; params: (m,)."""
    _expect_params("eqtrans", params, 1)
    middle = params[0]
    atom = _expect_atom("eqtrans", goal, ("eq",))
    return [(eq(atom.args[0], middle), {}), (eq(middle, atom.args[1]), {})]


@_rule("eqsub")
def _eqsub(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """Congruence: from ``a = b`` and ``P[x := a]`` conclude ``P[x := b]``.

    params: (template P, hole variable name x, a, b).  The checker verifies
    that the goal really is ``P[x := b]``; which occurrences are rewritten
    is controlled by where the producer put the hole in the template.
    """
    _expect_params("eqsub", params, 4)
    template, hole, a, b = params
    if not isinstance(hole, str):
        raise _fail("eqsub", "hole must be a variable name")
    expected = subst_formula(template, {hole: b})
    if expected != goal:
        raise _fail("eqsub", "goal does not match template[hole := b]")
    before = subst_formula(template, {hole: a})
    return [(eq(a, b), {}), (before, {})]


# ---------------------------------------------------------------------------
# Two's-complement arithmetic schemas
# ---------------------------------------------------------------------------

#: Operators whose results always lie in [0, 2^64).
WORD_VALUED_OPS = frozenset((
    "add64", "sub64", "mul64", "and64", "or64", "xor64", "sll64", "srl64",
    "mod64", "cmpeq", "cmpult", "cmpule", "extbl", "extwl", "extll", "sel",
))


def _is_word_valued(term: Term) -> bool:
    if isinstance(term, Int):
        return 0 <= term.value < WORD_MOD
    if isinstance(term, App):
        return term.op in WORD_VALUED_OPS
    return False


def _is_ground(term: Term) -> bool:
    return not term_vars(term) and not _mentions_memory(term)


def _mentions_memory(term: Term) -> bool:
    if isinstance(term, App):
        if term.op in ("sel", "upd"):
            return True
        return any(_mentions_memory(arg) for arg in term.args)
    return False


@_rule("arith_eval")
def _arith_eval(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """A ground comparison atom, decided by evaluation."""
    atom = _expect_atom("arith_eval", goal,
                        ("eq", "ne", "lt", "le", "gt", "ge"))
    for arg in atom.args:
        if not _is_ground(arg):
            raise _fail("arith_eval", "goal is not ground")
    a = eval_term(atom.args[0], {})
    b = eval_term(atom.args[1], {})
    truth = {"eq": a == b, "ne": a != b, "lt": a < b,
             "le": a <= b, "gt": a > b, "ge": a >= b}[atom.pred]
    if not truth:
        raise _fail("arith_eval", "ground atom is false")
    return []


@_rule("mod_word")
def _mod_word(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``t mod 2^64 = t`` for any word-valued term ``t``."""
    atom = _expect_atom("mod_word", goal, ("eq",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "mod64"
            and left.args[0] == right):
        raise _fail("mod_word", "goal must have shape (t mod 2^64) = t")
    if not _is_word_valued(right):
        raise _fail("mod_word", f"term is not word-valued")
    return []


def _linear_form(term: Term, modulus: int | None) -> dict[Term | None, int]:
    """Decompose ``term`` into a linear combination of opaque atoms.

    Returns a map from atom (or None for the constant) to coefficient.
    With ``modulus`` set, the machine operators ``add64``/``sub64``/
    ``mod64`` are treated as their pure counterparts — sound because the
    result is only ever compared modulo 2^64.  Without it, only the pure
    operators are linear.
    """
    result: dict[Term | None, int] = {}

    def add_in(key: Term | None, coeff: int) -> None:
        result[key] = result.get(key, 0) + coeff

    def walk(t: Term, coeff: int) -> None:
        if isinstance(t, Int):
            add_in(None, coeff * t.value)
            return
        if isinstance(t, App):
            if t.op == "add" or (modulus and t.op == "add64"):
                walk(t.args[0], coeff)
                walk(t.args[1], coeff)
                return
            if t.op == "sub" or (modulus and t.op == "sub64"):
                walk(t.args[0], coeff)
                walk(t.args[1], -coeff)
                return
            if modulus and t.op == "mod64":
                walk(t.args[0], coeff)
                return
            if t.op == "mul":
                a, b = t.args
                if isinstance(a, Int):
                    walk(b, coeff * a.value)
                    return
                if isinstance(b, Int):
                    walk(a, coeff * b.value)
                    return
        add_in(t, coeff)

    walk(term, 1)
    if modulus is not None:
        result = {key: value % modulus for key, value in result.items()}
    return {key: value for key, value in result.items() if value != 0}


@_rule("norm_mod_eq")
def _norm_mod_eq(goal: Formula, params: tuple,
                 hyps: Hyps) -> list[Obligation]:
    """``t1 mod 2^64 = t2 mod 2^64`` when t1 and t2 have the same linear
    normal form modulo 2^64 (treating non-linear subterms as atoms).

    This is the workhorse behind the paper's example rule
    ``e1 (+) e2 (-) e2 = e1 if e1 mod 2^64 = e1``: the prover derives such
    facts by chaining this unconditional congruence with mod-identity
    hypotheses.
    """
    atom = _expect_atom("norm_mod_eq", goal, ("eq",))
    left, right = atom.args
    ok = (isinstance(left, App) and left.op == "mod64"
          and isinstance(right, App) and right.op == "mod64")
    if not ok:
        raise _fail("norm_mod_eq",
                    "goal must have shape (t1 mod 2^64) = (t2 mod 2^64)")
    lhs = _linear_form(left.args[0], WORD_MOD)
    rhs = _linear_form(right.args[0], WORD_MOD)
    if lhs != rhs:
        raise _fail("norm_mod_eq", "normal forms differ")
    return []


@_rule("word_ge0")
def _word_ge0(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``t >= 0`` for any word-valued ``t``."""
    atom = _expect_atom("word_ge0", goal, ("ge",))
    if atom.args[1] != Int(0):
        raise _fail("word_ge0", "bound must be the literal 0")
    if not _is_word_valued(atom.args[0]):
        raise _fail("word_ge0", "term is not word-valued")
    return []


@_rule("word_lt_mod")
def _word_lt_mod(goal: Formula, params: tuple,
                 hyps: Hyps) -> list[Obligation]:
    """``t < 2^64`` for any word-valued ``t``."""
    atom = _expect_atom("word_lt_mod", goal, ("lt",))
    if atom.args[1] != Int(WORD_MOD):
        raise _fail("word_lt_mod", "bound must be the literal 2^64")
    if not _is_word_valued(atom.args[0]):
        raise _fail("word_lt_mod", "term is not word-valued")
    return []


_CMP_RULES = {
    # rule name: (operator, premise pred on the flag, conclusion pred)
    "cmpult_true": ("cmpult", "ne", "lt"),
    "cmpult_false": ("cmpult", "eq", "ge"),
    "cmpule_true": ("cmpule", "ne", "le"),
    "cmpule_false": ("cmpule", "eq", "gt"),
    "cmpeq_true": ("cmpeq", "ne", "eq"),
    "cmpeq_false": ("cmpeq", "eq", "ne"),
}


def _make_cmp_rule(name: str, op: str, flag_pred: str,
                   conclusion_pred: str) -> None:
    def rule(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
        """Semantics of an Alpha compare instruction.

        From ``cmpXX(a, b) != 0`` (or ``= 0``) conclude the corresponding
        comparison of the *word values* ``a mod 2^64`` and ``b mod 2^64``.
        params: (a, b).
        """
        if len(params) != 2:
            raise _fail(name, "params must be the two compared terms")
        a, b = params
        atom = _expect_atom(name, goal, (conclusion_pred,))
        expected = (App("mod64", (a,)), App("mod64", (b,)))
        if atom.args != expected:
            raise _fail(
                name, "goal must compare (a mod 2^64) with (b mod 2^64)")
        flag = App(op, (a, b))
        premise = Atom(flag_pred, (flag, Int(0)))
        return [(premise, {})]

    RULES[name] = rule


for _name, (_op, _flag, _conc) in _CMP_RULES.items():
    _make_cmp_rule(_name, _op, _flag, _conc)


@_rule("add64_exact")
def _add64_exact(goal: Formula, params: tuple,
                 hyps: Hyps) -> list[Obligation]:
    """``a (+) b = a + b`` when ``a >= 0``, ``b >= 0`` and ``a + b < 2^64``.

    The bridge from machine addition to pure integer addition, after which
    ``linarith`` applies.
    """
    atom = _expect_atom("add64_exact", goal, ("eq",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "add64"):
        raise _fail("add64_exact", "left side must be add64(a, b)")
    a, b = left.args
    if right != App("add", (a, b)):
        raise _fail("add64_exact", "right side must be add(a, b)")
    total = App("add", (a, b))
    return [(Atom("ge", (a, Int(0))), {}),
            (Atom("ge", (b, Int(0))), {}),
            (Atom("lt", (total, Int(WORD_MOD))), {})]


@_rule("sub64_exact")
def _sub64_exact(goal: Formula, params: tuple,
                 hyps: Hyps) -> list[Obligation]:
    """``a (-) b = a - b`` when ``0 <= b <= a < 2^64``."""
    atom = _expect_atom("sub64_exact", goal, ("eq",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "sub64"):
        raise _fail("sub64_exact", "left side must be sub64(a, b)")
    a, b = left.args
    if right != App("sub", (a, b)):
        raise _fail("sub64_exact", "right side must be sub(a, b)")
    return [(Atom("ge", (b, Int(0))), {}),
            (Atom("le", (b, a)), {}),
            (Atom("lt", (a, Int(WORD_MOD))), {})]


@_rule("and_ubound")
def _and_ubound(goal: Formula, params: tuple,
                hyps: Hyps) -> list[Obligation]:
    """``(a & c) <= c`` for a literal ``c`` in word range."""
    atom = _expect_atom("and_ubound", goal, ("le",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "and64"):
        raise _fail("and_ubound", "left side must be and64(a, c)")
    mask = left.args[1]
    if not isinstance(mask, Int) or mask != right:
        raise _fail("and_ubound", "bound must be the literal mask")
    if not 0 <= mask.value < WORD_MOD:
        raise _fail("and_ubound", "mask out of word range")
    return []


@_rule("and_mask_disjoint")
def _and_mask_disjoint(goal: Formula, params: tuple,
                       hyps: Hyps) -> list[Obligation]:
    """``((a & c1) & c2) = 0`` when the literal masks satisfy c1 & c2 = 0."""
    atom = _expect_atom("and_mask_disjoint", goal, ("eq",))
    left, right = atom.args
    if right != Int(0):
        raise _fail("and_mask_disjoint", "right side must be 0")
    if not (isinstance(left, App) and left.op == "and64"):
        raise _fail("and_mask_disjoint", "left side must be and64")
    inner, outer_mask = left.args
    if not (isinstance(inner, App) and inner.op == "and64"):
        raise _fail("and_mask_disjoint", "inner term must be and64(a, c1)")
    inner_value = _constant_mask(inner.args[1])
    outer_value = _constant_mask(outer_mask)
    if inner_value is None or outer_value is None:
        raise _fail("and_mask_disjoint", "masks must be constant-valued")
    if inner_value & outer_value:
        raise _fail("and_mask_disjoint", "masks are not disjoint")
    return []


@_rule("add_align")
def _add_align(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``((a (+) b) & m) = 0`` from ``(a & m) = 0`` and ``(b & m) = 0``,
    for a literal mask ``m = 2^k - 1``.

    Sound because 2^64 is a multiple of 2^k: the sum of two multiples of
    2^k is still a multiple, even after wrap-around.
    """
    atom = _expect_atom("add_align", goal, ("eq",))
    left, right = atom.args
    if right != Int(0):
        raise _fail("add_align", "right side must be 0")
    if not (isinstance(left, App) and left.op == "and64"):
        raise _fail("add_align", "left side must be and64(a (+) b, m)")
    summed, mask = left.args
    if not (isinstance(summed, App) and summed.op == "add64"):
        raise _fail("add_align", "masked term must be add64(a, b)")
    if not isinstance(mask, Int):
        raise _fail("add_align", "mask must be a literal")
    m = mask.value
    if m < 0 or (m & (m + 1)) != 0 or m >= WORD_MOD:
        raise _fail("add_align", "mask must be 2^k - 1")
    a, b = summed.args
    return [(eq(App("and64", (a, mask)), 0), {}),
            (eq(App("and64", (b, mask)), 0), {})]


@_rule("srl_bound")
def _srl_bound(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``(a >> k) < c`` for literals with ``2^(64 - (k & 63)) <= c``."""
    atom = _expect_atom("srl_bound", goal, ("lt",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "srl64"):
        raise _fail("srl_bound", "left side must be srl64(a, k)")
    shift = left.args[1]
    if not (isinstance(shift, Int) and isinstance(right, Int)):
        raise _fail("srl_bound", "shift and bound must be literals")
    if (1 << (64 - (shift.value & 63))) > right.value:
        raise _fail("srl_bound", "bound is too tight for this shift")
    return []


_EXT_BOUNDS = {"extbl": 1 << 8, "extwl": 1 << 16, "extll": 1 << 32}


@_rule("ext_bound")
def _ext_bound(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``extbl/extwl/extll(a, b) < c`` for a literal c at least the width."""
    atom = _expect_atom("ext_bound", goal, ("lt",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op in _EXT_BOUNDS):
        raise _fail("ext_bound", "left side must be a byte/word extraction")
    if not isinstance(right, Int) or right.value < _EXT_BOUNDS[left.op]:
        raise _fail("ext_bound", "bound must be a literal >= extract width")
    return []


@_rule("sll_align")
def _sll_align(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``((a << k) & m) = 0`` for literals with ``m < 2^(k & 63)``."""
    atom = _expect_atom("sll_align", goal, ("eq",))
    left, right = atom.args
    if right != Int(0):
        raise _fail("sll_align", "right side must be 0")
    if not (isinstance(left, App) and left.op == "and64"):
        raise _fail("sll_align", "left side must be and64(a << k, m)")
    shifted, mask = left.args
    if not (isinstance(shifted, App) and shifted.op == "sll64"):
        raise _fail("sll_align", "masked term must be sll64(a, k)")
    shift = shifted.args[1]
    if not (isinstance(shift, Int) and isinstance(mask, Int)):
        raise _fail("sll_align", "shift and mask must be literals")
    if mask.value >= (1 << (shift.value & 63)) or mask.value < 0:
        raise _fail("sll_align", "mask reaches above the shifted-in zeros")
    return []


def _constant_mask(term: Term) -> int | None:
    """The constant value of a mask operand, if its linear normal form
    modulo 2^64 is a constant (covers literals and zero-register idioms
    like ``add64(sub64(r, r), c)``)."""
    if isinstance(term, Int):
        return term.value % WORD_MOD
    form = _linear_form(term, WORD_MOD)
    if not form:
        return 0
    if set(form) == {None}:
        return form[None]
    return None


@_rule("or_disjoint")
def _or_disjoint(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``(x & c) | b  =  (x & c) (+) b`` given ``b & c = 0``.

    The SFI sandboxing identity: OR-ing a masked offset into a segment
    base is the same as adding it, because the bit ranges are disjoint.
    Sound unconditionally given the premise: the two operands share no set
    bits, so there are no carries and the sum stays below 2^64.
    ``c`` must be constant-valued.
    """
    atom = _expect_atom("or_disjoint", goal, ("eq",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "or64"):
        raise _fail("or_disjoint", "left side must be or64(a, b)")
    a, b = left.args
    if right != App("add64", (a, b)):
        raise _fail("or_disjoint", "right side must be add64(a, b)")
    if not (isinstance(a, App) and a.op == "and64"):
        raise _fail("or_disjoint", "first operand must be and64(x, c)")
    mask = a.args[1]
    if _constant_mask(mask) is None:
        raise _fail("or_disjoint", "mask is not constant-valued")
    premise = eq(App("and64", (b, mask)), 0)
    return [(premise, {})]


@_rule("and_submask")
def _and_submask(goal: Formula, params: tuple,
                 hyps: Hyps) -> list[Obligation]:
    """``a & c2 = 0`` from ``a & c1 = 0`` when c2's bits are inside c1's.

    params: (c1,) — the wider constant mask of the premise.
    """
    _expect_params("and_submask", params, 1)
    wide = params[0]
    atom = _expect_atom("and_submask", goal, ("eq",))
    left, right = atom.args
    if right != Int(0):
        raise _fail("and_submask", "right side must be 0")
    if not (isinstance(left, App) and left.op == "and64"):
        raise _fail("and_submask", "left side must be and64(a, c2)")
    a, narrow = left.args
    wide_value = _constant_mask(wide)
    narrow_value = _constant_mask(narrow)
    if wide_value is None or narrow_value is None:
        raise _fail("and_submask", "masks must be constant-valued")
    if narrow_value & ~wide_value:
        raise _fail("and_submask", "c2 is not a submask of c1")
    premise = eq(App("and64", (a, wide)), 0)
    return [(premise, {})]


@_rule("sll_ubound")
def _sll_ubound(goal: Formula, params: tuple,
                hyps: Hyps) -> list[Obligation]:
    """``(a << k) <= c`` from ``0 <= a <= m``, for constant k, m, c with
    ``m << k <= c`` and ``m << k < 2^64`` (so the shift cannot wrap).

    params: (m,) — the premise bound.
    """
    _expect_params("sll_ubound", params, 1)
    m = params[0]
    atom = _expect_atom("sll_ubound", goal, ("le",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "sll64"):
        raise _fail("sll_ubound", "left side must be sll64(a, k)")
    a, k = left.args
    k_value = _constant_mask(k)
    m_value = _constant_mask(m)
    c_value = _constant_mask(right)
    if k_value is None or m_value is None or c_value is None:
        raise _fail("sll_ubound", "k, m and the bound must be constant")
    shifted = m_value << (k_value & 63)
    if shifted > c_value or shifted >= WORD_MOD:
        raise _fail("sll_ubound", "m << k exceeds the bound or the word")
    return [(Atom("ge", (a, Int(0))), {}),
            (Atom("le", (a, m)), {})]


@_rule("shift_trunc_le")
def _shift_trunc_le(goal: Formula, params: tuple,
                    hyps: Hyps) -> list[Obligation]:
    """``((a >> k) << k) <= a mod 2^64`` — truncating the low k bits never
    increases a word value.  ``k`` must be constant-valued."""
    atom = _expect_atom("shift_trunc_le", goal, ("le",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "sll64"):
        raise _fail("shift_trunc_le", "left side must be sll64(srl64(a,k),k)")
    shifted, k_out = left.args
    if not (isinstance(shifted, App) and shifted.op == "srl64"):
        raise _fail("shift_trunc_le", "inner term must be srl64(a, k)")
    a, k_in = shifted.args
    if k_in != k_out or _constant_mask(k_in) is None:
        raise _fail("shift_trunc_le", "shift counts must be the same "
                    "constant")
    if right != App("mod64", (a,)):
        raise _fail("shift_trunc_le", "bound must be a mod 2^64")
    return []


@_rule("sll_lt_of_srl")
def _sll_lt_of_srl(goal: Formula, params: tuple,
                   hyps: Hyps) -> list[Obligation]:
    """From ``a mod 2^64 < (b >> k) mod 2^64`` conclude
    ``(a << k) < b mod 2^64`` — the view-index bound: if a word index is
    below ``len >> k``, the byte offset ``index << k`` is below ``len``
    (and the shift cannot wrap).  params: (b,); k constant-valued."""
    _expect_params("sll_lt_of_srl", params, 1)
    b = params[0]
    atom = _expect_atom("sll_lt_of_srl", goal, ("lt",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "sll64"):
        raise _fail("sll_lt_of_srl", "left side must be sll64(a, k)")
    a, k = left.args
    if _constant_mask(k) is None:
        raise _fail("sll_lt_of_srl", "shift count must be constant-valued")
    if right != App("mod64", (b,)):
        raise _fail("sll_lt_of_srl", "bound must be b mod 2^64")
    premise = Atom("lt", (App("mod64", (a,)),
                          App("mod64", (App("srl64", (b, k)),))))
    return [(premise, {})]


@_rule("cmp_bool")
def _cmp_bool(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """``cmpXX(a, b) = 0 \\/ cmpXX(a, b) = 1`` — compare results are
    boolean, which postconditions about verdict registers need."""
    if not isinstance(goal, Or):
        raise _fail("cmp_bool", "goal must be a disjunction")
    zero_side, one_side = goal.left, goal.right
    ok = (isinstance(zero_side, Atom) and zero_side.pred == "eq"
          and isinstance(one_side, Atom) and one_side.pred == "eq"
          and zero_side.args[0] == one_side.args[0]
          and zero_side.args[1] == Int(0)
          and one_side.args[1] == Int(1))
    if not ok:
        raise _fail("cmp_bool", "goal must be (t = 0) \\/ (t = 1)")
    flag = zero_side.args[0]
    if not (isinstance(flag, App)
            and flag.op in ("cmpeq", "cmpult", "cmpule")):
        raise _fail("cmp_bool", "term is not a compare result")
    return []


@_rule("sel_upd_same")
def _sel_upd_same(goal: Formula, params: tuple,
                  hyps: Hyps) -> list[Obligation]:
    """``sel(upd(m, a, v), b) = v mod 2^64`` from ``a mod 2^64 = b mod 2^64``."""
    atom = _expect_atom("sel_upd_same", goal, ("eq",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "sel"):
        raise _fail("sel_upd_same", "left side must be sel(upd(...), b)")
    memory, read_addr = left.args
    if not (isinstance(memory, App) and memory.op == "upd"):
        raise _fail("sel_upd_same", "memory must be an upd(...)")
    __, write_addr, value = memory.args
    if right != App("mod64", (value,)):
        raise _fail("sel_upd_same", "right side must be v mod 2^64")
    premise = eq(App("mod64", (write_addr,)), App("mod64", (read_addr,)))
    return [(premise, {})]


@_rule("sel_upd_other")
def _sel_upd_other(goal: Formula, params: tuple,
                   hyps: Hyps) -> list[Obligation]:
    """``sel(upd(m, a, v), b) = sel(m, b)`` from ``a mod 2^64 != b mod 2^64``."""
    atom = _expect_atom("sel_upd_other", goal, ("eq",))
    left, right = atom.args
    if not (isinstance(left, App) and left.op == "sel"):
        raise _fail("sel_upd_other", "left side must be sel(upd(...), b)")
    memory, read_addr = left.args
    if not (isinstance(memory, App) and memory.op == "upd"):
        raise _fail("sel_upd_other", "memory must be an upd(...)")
    base, write_addr, __ = memory.args
    if right != App("sel", (base, read_addr)):
        raise _fail("sel_upd_other", "right side must be sel(m, b)")
    premise = Atom("ne", (App("mod64", (write_addr,)),
                          App("mod64", (read_addr,))))
    return [(premise, {})]


# ---------------------------------------------------------------------------
# Linear arithmetic (Fourier-Motzkin refutation)
# ---------------------------------------------------------------------------

def _constraints_of(atom: Atom, negate: bool) -> list[list[dict]]:
    """Translate an atom into linear constraints ``lin <= 0``.

    Returns a *disjunction* of conjunctions (only ``ne`` produces two
    branches).  Each constraint is a linear-form dict.  Uses integer
    tightening: ``a < b`` becomes ``a - b + 1 <= 0``.
    """
    a, b = atom.args
    lhs = _linear_form(App("sub", (a, b)), None)

    def shifted(form: dict, delta: int) -> dict:
        result = dict(form)
        result[None] = result.get(None, 0) + delta
        return result

    def negated(form: dict) -> dict:
        return {key: -value for key, value in form.items()}

    pred = atom.pred
    if negate:
        flip = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                "le": "gt", "gt": "le"}
        pred = flip[pred]
    if pred == "le":
        return [[lhs]]
    if pred == "lt":
        return [[shifted(lhs, 1)]]
    if pred == "ge":
        return [[negated(lhs)]]
    if pred == "gt":
        return [[shifted(negated(lhs), 1)]]
    if pred == "eq":
        return [[lhs, negated(lhs)]]
    # ne: (a - b <= -1) or (b - a <= -1)
    return [[shifted(lhs, 1)], [shifted(negated(lhs), 1)]]


def _fm_pick_variable(work_constraints) -> "Term":
    """Deterministic Fourier-Motzkin elimination order: the variable whose
    elimination produces the fewest combined rows (the classic heuristic),
    tie-broken by rendered text.  ``next(iter(set))`` would depend on hash
    randomization and make certification nondeterministic across runs."""
    from repro.logic.pretty import pp_term

    counts: dict = {}
    for constraint in work_constraints:
        for key, value in constraint.items():
            if key is None or value == 0:
                continue
            pos, neg = counts.get(key, (0, 0))
            if value > 0:
                counts[key] = (pos + 1, neg)
            else:
                counts[key] = (pos, neg + 1)
    return min(counts,
               key=lambda key: (counts[key][0] * counts[key][1],
                                pp_term(key)))


def _fm_infeasible(constraints: list[dict]) -> bool:
    """True if the conjunction of ``lin <= 0`` constraints has no rational
    solution (hence no integer solution).

    All coefficients are integers, and positive-multiplier combinations
    keep them integral, so the elimination runs in exact integer
    arithmetic (no Fractions needed — this is on the certification hot
    path).
    """
    work = [dict(constraint) for constraint in constraints]
    while True:
        if not any(key is not None and value != 0
                   for constraint in work
                   for key, value in constraint.items()):
            break
        variable = _fm_pick_variable(work)
        positive = [c for c in work if c.get(variable, 0) > 0]
        negative = [c for c in work if c.get(variable, 0) < 0]
        others = [c for c in work if c.get(variable, 0) == 0]
        combined = []
        for pos in positive:
            for neg in negative:
                scale_pos = -neg[variable]
                scale_neg = pos[variable]
                merged: dict = {}
                for key, value in pos.items():
                    merged[key] = value * scale_pos
                for key, value in neg.items():
                    merged[key] = merged.get(key, 0) + value * scale_neg
                merged.pop(variable, None)
                combined.append({key: value
                                 for key, value in merged.items()
                                 if value != 0})
        work = others + combined
        if len(work) > 4000:
            # Refuse pathological blowups rather than hang the checker.
            raise ProofError("linarith: Fourier-Motzkin blowup")
    return any(constraint.get(None, 0) > 0 for constraint in work)


def _fm_core(constraints: list[dict],
             sources: list[frozenset] | None = None) -> frozenset | None:
    """Fourier-Motzkin with provenance: returns the set of source tags
    behind one derived contradiction, or None when feasible.

    ``sources`` tags each input constraint (defaults to singleton
    indices); combined constraints carry the union of their parents' tags,
    so the contradiction's tag set is an unsat core — the prover uses it
    to minimize linarith premise lists in one pass.
    """
    if sources is None:
        sources = [frozenset((index,)) for index in range(len(constraints))]
    work = [(dict(constraint), tag)
            for constraint, tag in zip(constraints, sources)]
    while True:
        if not any(key is not None and value != 0
                   for constraint, __ in work
                   for key, value in constraint.items()):
            break
        variable = _fm_pick_variable(
            [constraint for constraint, __ in work])
        positive = [(c, t) for c, t in work if c.get(variable, 0) > 0]
        negative = [(c, t) for c, t in work if c.get(variable, 0) < 0]
        others = [(c, t) for c, t in work if c.get(variable, 0) == 0]
        combined = []
        for pos, pos_tag in positive:
            for neg, neg_tag in negative:
                scale_pos = -neg[variable]
                scale_neg = pos[variable]
                merged: dict = {}
                for key, value in pos.items():
                    merged[key] = value * scale_pos
                for key, value in neg.items():
                    merged[key] = merged.get(key, 0) + value * scale_neg
                merged.pop(variable, None)
                combined.append(
                    ({key: value for key, value in merged.items()
                      if value != 0}, pos_tag | neg_tag))
        work = others + combined
        if len(work) > 4000:
            # Refuse pathological blowups rather than hang the checker.
            raise ProofError("linarith: Fourier-Motzkin blowup")
    best: frozenset | None = None
    for constraint, tag in work:
        if constraint.get(None, 0) > 0:
            if best is None or len(tag) < len(best):
                best = tag
    return best


@_rule("linarith")
def _linarith(goal: Formula, params: tuple, hyps: Hyps) -> list[Obligation]:
    """Linear integer arithmetic over opaque atoms.

    params: a tuple of comparison atoms (the premises).  The side condition
    checks that premises plus the *negation* of the goal are infeasible by
    Fourier-Motzkin over the rationals after integer tightening — a sound
    (not complete) refutation, since every term denotes an integer.
    Premise ``ne`` atoms are ignored (FM cannot use them); a ``ne`` *goal*
    splits into two refutations.
    """
    goal_atom = _expect_atom("linarith", goal,
                             ("eq", "ne", "lt", "le", "gt", "ge"))
    premise_constraints: list[dict] = []
    for premise in params:
        if not isinstance(premise, Atom) or premise.pred not in (
                "eq", "lt", "le", "gt", "ge", "ne"):
            raise _fail("linarith", "premises must be comparison atoms")
        if premise.pred == "ne":
            continue
        branches = _constraints_of(premise, negate=False)
        premise_constraints.extend(branches[0])
    for branch in _constraints_of(goal_atom, negate=True):
        if not _fm_infeasible(premise_constraints + branch):
            raise _fail("linarith",
                        "goal does not follow by linear arithmetic")
    return [(premise, {}) for premise in params]
