"""Safety policies: the consumer-published contract (paper §2.1).

A policy bundles the three parts the paper lists: the VC generator (shared,
:mod:`repro.vcgen.vcgen`), the proof rule set Delta (shared,
:mod:`repro.proof.rules`), and the policy-specific *precondition* and
*postcondition*.  For testing we also attach a semantic interpretation of
the ``rd``/``wr`` predicates, so the abstract machine can actually enforce
the policy on concrete states — that is how the suite exercises the Safety
Theorem empirically.

:func:`resource_access_policy` is the kernel-table example of §2: the
kernel hands untrusted code the address of a (tag, data) table entry in
``r0``; the tag is read-only and the data word is writable only when the
tag is non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.logic.formulas import Formula, Implies, Truth, conj, eq, ne, rd, wr
from repro.logic.terms import Var, add64, mod64, sel

AddressPredicate = Callable[[int], bool]
#: Builds (can_read, can_write) checkers from the initial machine state:
#: a register map and the initial memory contents (as a read callback).
CheckerFactory = Callable[[Mapping[int, int], Callable[[int], int]],
                          tuple[AddressPredicate, AddressPredicate]]


@dataclass(frozen=True)
class SafetyPolicy:
    """A named safety policy: precondition, postcondition, semantics.

    ``precondition``/``postcondition`` are the formulas plugged into the
    safety predicate.  ``make_checkers`` gives the policy's ground-truth
    interpretation of rd/wr for a concrete initial state; it is used only
    by the abstract machine and the tests, never by validation (validation
    is purely syntactic proof checking, as in the paper).
    """

    name: str
    precondition: Formula
    postcondition: Formula = field(default_factory=Truth)
    make_checkers: CheckerFactory | None = None

    def checkers(self, registers: Mapping[int, int],
                 read_word: Callable[[int], int]
                 ) -> tuple[AddressPredicate, AddressPredicate]:
        if self.make_checkers is None:
            raise ValueError(
                f"policy {self.name!r} has no semantic interpretation")
        return self.make_checkers(registers, read_word)


def word_identity(register: Var) -> Formula:
    """``r mod 2**64 = r`` — the valid-register-value constraint the paper
    attaches to every input register."""
    return eq(mod64(register), register)


def resource_access_policy() -> SafetyPolicy:
    """The §2 resource-access service policy.

    ``Pre_r = r0 mod 2**64 = r0  /\\  rd(r0)  /\\  rd(r0 (+) 8)
    /\\ (sel(rm, r0) != 0 => wr(r0 (+) 8))``

    The tag lives at ``r0`` and the data word at ``r0 (+) 8``; the data is
    writable only when the tag is non-zero.  The postcondition is ``true``.
    """
    r0 = Var("r0")
    rm = Var("rm")
    precondition = conj([
        word_identity(r0),
        rd(r0),
        rd(add64(r0, 8)),
        Implies(ne(sel(rm, r0), 0), wr(add64(r0, 8))),
    ])

    def make_checkers(registers: Mapping[int, int],
                      read_word: Callable[[int], int]
                      ) -> tuple[AddressPredicate, AddressPredicate]:
        tag_address = registers[0]
        data_address = (tag_address + 8) % (1 << 64)
        tag = read_word(tag_address)

        def can_read(address: int) -> bool:
            return address in (tag_address, data_address)

        def can_write(address: int) -> bool:
            return address == data_address and tag != 0

        return can_read, can_write

    return SafetyPolicy(
        name="resource-access",
        precondition=precondition,
        postcondition=Truth(),
        make_checkers=make_checkers,
    )
