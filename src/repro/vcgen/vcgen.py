"""The verification-condition generator (Figure 4 of the paper).

Predicates are computed backwards from the end of the program: the VC of an
instruction is expressed in terms of the VC of its successors, with register
assignments becoming substitutions (``P[rd <- rs (+) op]``), loads adding an
``rd(address)`` obligation, stores adding ``wr(address)`` and updating the
memory pseudo-register, and conditional branches splitting into implication
under the branch hypothesis and its negation.

Loops (§4): every backward-branch *target* must carry a loop invariant.
Invariant points cut the control-flow graph into acyclic fragments; each
fragment's VC is computed with invariant points treated as opaque (their VC
is the invariant itself), and each invariant contributes a separate proof
obligation ``Inv => VC(fragment starting there)``.  The overall safety
predicate is the closed conjunction of all obligations — the paper notes
this partitioning "tends to reduce the size of the proof dramatically",
which ``benchmarks/bench_ablation_invariants.py`` measures.

This module is part of the consumer's trusted computing base: both producer
and consumer run it, and proof validation checks the proof against the
consumer's own output, never the producer's claim.
"""

from __future__ import annotations

from typing import Mapping

from repro.alpha.isa import (
    NUM_REGS,
    Br,
    Branch,
    Instruction,
    Lda,
    Ldah,
    Ldq,
    Lit,
    OPERATE_NAMES,
    Operate,
    Program,
    Ret,
    Stq,
    branch_target,
    validate_program,
)
from repro.errors import VcGenError
from repro.logic.formulas import (
    And, Falsity, Formula, Implies, Or, Forall, Truth,
    eq, ge, lt, ne, rd, wr,
)
from repro.logic.simplify import simplify_formula
from repro.logic.subst import subst_formula
from repro.logic.terms import App, Int, Term, Var, WORD_MOD, add64, sel, upd

#: The logical variables naming the machine state, in quantifier order.
REGISTER_VARS: tuple[str, ...] = tuple(f"r{i}" for i in range(NUM_REGS))
MEMORY_VAR = "rm"

_SIGN_BOUND = Int(1 << 63)


def register_term(index: int) -> Var:
    """The logical variable for machine register ``index``."""
    return Var(f"r{index}")


def _rb_term(rb) -> Term:
    if isinstance(rb, Lit):
        return Int(rb.value)
    return register_term(rb.index)


def _disp_term(disp: int) -> Int:
    """A 16-bit displacement as a nonnegative word constant.

    Negative displacements appear as their two's-complement word value,
    which is exactly what ``add64`` then does with them.
    """
    return Int(disp % WORD_MOD)


def _address_term(base_reg: int, disp: int) -> Term:
    if disp == 0:
        return register_term(base_reg)
    return add64(register_term(base_reg), _disp_term(disp))


def _branch_hypotheses(instruction: Branch) -> tuple[Formula, Formula]:
    """(taken, not-taken) hypotheses for a conditional branch.

    BEQ/BNE test the word against zero; the signed branches test the
    two's-complement sign, i.e. whether the word value is below 2**63.
    """
    reg = register_term(instruction.rs.index)
    name = instruction.name
    if name == "BEQ":
        return eq(reg, 0), ne(reg, 0)
    if name == "BNE":
        return ne(reg, 0), eq(reg, 0)
    if name == "BGE":
        return lt(reg, _SIGN_BOUND), ge(reg, _SIGN_BOUND)
    if name == "BLT":
        return ge(reg, _SIGN_BOUND), lt(reg, _SIGN_BOUND)
    if name == "BGT":
        return (And(lt(reg, _SIGN_BOUND), ne(reg, 0)),
                Or(ge(reg, _SIGN_BOUND), eq(reg, 0)))
    if name == "BLE":
        return (Or(ge(reg, _SIGN_BOUND), eq(reg, 0)),
                And(lt(reg, _SIGN_BOUND), ne(reg, 0)))
    raise VcGenError(f"unknown branch {name!r}")  # pragma: no cover


class _VcComputation:
    """Backward VC computation with memoization and invariant cut points."""

    def __init__(self, program: Program, postcondition: Formula,
                 invariants: Mapping[int, Formula]) -> None:
        self.program = program
        self.postcondition = postcondition
        self.invariants = dict(invariants)
        self._memo: dict[int, Formula] = {}

    def check_invariant_coverage(self) -> None:
        """Every backward branch target must have an invariant; this is what
        guarantees the backward recursion terminates (all cycles pass
        through a cut point)."""
        for pc, instruction in enumerate(self.program):
            if isinstance(instruction, (Branch, Br)):
                target = branch_target(pc, instruction)
                if target <= pc and target not in self.invariants:
                    raise VcGenError(
                        f"backward branch at pc={pc} to pc={target} has no "
                        f"loop invariant; the PCC binary must map every "
                        f"backward-branch target to an invariant")
        for pc in self.invariants:
            if not 0 <= pc < len(self.program):
                raise VcGenError(
                    f"invariant annotates pc={pc}, outside the program")

    def successor_vc(self, pc: int) -> Formula:
        """VC used when control *arrives* at ``pc``: the invariant if ``pc``
        is a cut point, else the computed VC."""
        invariant = self.invariants.get(pc)
        if invariant is not None:
            return invariant
        return self.vc(pc)

    def vc(self, pc: int) -> Formula:
        """The Figure 4 rules, memoized per pc."""
        cached = self._memo.get(pc)
        if cached is not None:
            return cached
        if not 0 <= pc < len(self.program):
            raise VcGenError(f"pc {pc} outside program during VC generation")
        instruction = self.program[pc]
        result = self._vc_of(pc, instruction)
        self._memo[pc] = result
        return result

    def _vc_of(self, pc: int, instruction: Instruction) -> Formula:
        if isinstance(instruction, Ret):
            return self.postcondition

        if isinstance(instruction, Operate):
            op = OPERATE_NAMES[instruction.name]
            value = App(op, (register_term(instruction.ra.index),
                             _rb_term(instruction.rb)))
            following = self.successor_vc(pc + 1)
            return subst_formula(following,
                                 {f"r{instruction.rc.index}": value})

        if isinstance(instruction, Lda):
            value = add64(register_term(instruction.rs.index),
                          _disp_term(instruction.disp))
            following = self.successor_vc(pc + 1)
            return subst_formula(following,
                                 {f"r{instruction.rd.index}": value})

        if isinstance(instruction, Ldah):
            value = add64(register_term(instruction.rs.index),
                          Int((instruction.disp << 16) % WORD_MOD))
            following = self.successor_vc(pc + 1)
            return subst_formula(following,
                                 {f"r{instruction.rd.index}": value})

        if isinstance(instruction, Ldq):
            address = _address_term(instruction.rs.index, instruction.disp)
            loaded = sel(Var(MEMORY_VAR), address)
            following = self.successor_vc(pc + 1)
            after = subst_formula(following,
                                  {f"r{instruction.rd.index}": loaded})
            return And(rd(address), after)

        if isinstance(instruction, Stq):
            address = _address_term(instruction.rd.index, instruction.disp)
            new_memory = upd(Var(MEMORY_VAR), address,
                             register_term(instruction.rs.index))
            following = self.successor_vc(pc + 1)
            after = subst_formula(following, {MEMORY_VAR: new_memory})
            return And(wr(address), after)

        if isinstance(instruction, Br):
            return self.successor_vc(branch_target(pc, instruction))

        if isinstance(instruction, Branch):
            taken_hyp, fall_hyp = _branch_hypotheses(instruction)
            taken_vc = self.successor_vc(branch_target(pc, instruction))
            fall_vc = self.successor_vc(pc + 1)
            return And(Implies(taken_hyp, taken_vc),
                       Implies(fall_hyp, fall_vc))

        raise VcGenError(f"no VC rule for {instruction!r}")  # pragma: no cover


def _close(formula: Formula) -> Formula:
    """Quantify over every machine-state variable: ALL r0..r10, rm."""
    closed = formula
    for name in (MEMORY_VAR,) + tuple(reversed(REGISTER_VARS)):
        closed = Forall(name, closed)
    return closed


def compute_vc(program: Program, postcondition: Formula,
               invariants: Mapping[int, Formula] | None = None,
               pc: int = 0) -> Formula:
    """The raw (unquantified, unsimplified) VC of ``program`` from ``pc``."""
    computation = _VcComputation(program, postcondition, invariants or {})
    computation.check_invariant_coverage()
    return computation.vc(pc)


def safety_obligations(program: Program, precondition: Formula,
                       postcondition: Formula,
                       invariants: Mapping[int, Formula] | None = None,
                       simplify: bool = True) -> tuple[Formula, ...]:
    """The per-cut-point proof obligations of §2.2/§4, in canonical order.

    Index 0 is always the entry obligation ``ALL regs. Pre => VC_0``;
    the rest are ``ALL regs. Inv_c => VC(fragment at c)``, one per
    invariant cut point in increasing pc order.  Each obligation is
    closed over the machine-state variables and (with ``simplify``)
    individually simplified — a cut point's obligation depends only on
    its own acyclic fragment, which is what makes block-level proof
    reuse possible: editing one fragment leaves every other obligation
    bit-identical.

    :func:`safety_predicate` is exactly the conjunction of these parts
    (see :func:`conjoin_obligations`), so a proof can be assembled — or
    split — obligation by obligation.
    """
    validate_program(program)
    invariants = dict(invariants or {})
    computation = _VcComputation(program, postcondition, invariants)
    computation.check_invariant_coverage()

    obligations: list[Formula] = []
    entry = Implies(precondition, computation.vc(0))
    obligations.append(_close(entry))
    for cut_pc in sorted(invariants):
        body = computation.vc(cut_pc)
        obligations.append(_close(Implies(invariants[cut_pc], body)))

    if simplify:
        # One shared memo pair across the parts: the fragments share VC
        # subformulas, and the results must match what a whole-predicate
        # simplification would produce node for node.
        memo: dict = {}
        term_memo: dict = {}
        obligations = [simplify_formula(obligation, memo, term_memo)
                       for obligation in obligations]
    return tuple(obligations)


def conjoin_obligations(obligations) -> Formula:
    """Left-fold the obligations into one predicate, applying the same
    ``And`` unit/absorption laws the simplifier uses — so the result of
    conjoining simplified parts is structurally identical to simplifying
    the conjunction of raw parts (the simplifier rewrites ``And``
    bottom-up, which distributes over exactly this fold)."""
    parts = list(obligations)
    if not parts:
        raise VcGenError("no proof obligations to conjoin")
    predicate: Formula = parts[0]
    for part in parts[1:]:
        if isinstance(predicate, Falsity) or isinstance(part, Falsity):
            predicate = Falsity()
        elif isinstance(predicate, Truth):
            predicate = part
        elif isinstance(part, Truth):
            pass
        else:
            predicate = And(predicate, part)
    return predicate


def safety_predicate(program: Program, precondition: Formula,
                     postcondition: Formula,
                     invariants: Mapping[int, Formula] | None = None,
                     simplify: bool = True) -> Formula:
    """The safety predicate ``SP(Pi, Pre, Post)`` of §2.2.

    Without loops this is ``ALL regs. Pre => VC_0``.  With invariants it is
    the conjunction of that entry obligation with one obligation
    ``ALL regs. Inv_c => VC(fragment at c)`` per cut point, all closed over
    the machine-state variables.  Determinism matters: producer and
    consumer must compute the identical formula, so the obligations are
    ordered by pc and the simplifier is the shared deterministic one.
    """
    return conjoin_obligations(
        safety_obligations(program, precondition, postcondition,
                           invariants, simplify))
