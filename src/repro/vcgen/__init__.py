"""Floyd-style verification-condition generation (paper §2.1-§2.2).

:mod:`repro.vcgen.vcgen` implements the VC rules of Figure 4, extended to
the full instruction subset and to loops via explicit invariants (§4).
:mod:`repro.vcgen.policy` defines the :class:`SafetyPolicy` container and
the concrete policies used in the paper: the resource-access service of §2
and helpers shared by the packet-filter policy in
:mod:`repro.filters.policy`.
"""

from repro.vcgen.vcgen import (
    REGISTER_VARS,
    MEMORY_VAR,
    compute_vc,
    safety_predicate,
    register_term,
)
from repro.vcgen.policy import SafetyPolicy, resource_access_policy

__all__ = [
    "REGISTER_VARS",
    "MEMORY_VAR",
    "compute_vc",
    "safety_predicate",
    "register_term",
    "SafetyPolicy",
    "resource_access_policy",
]
