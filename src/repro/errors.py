"""Exception hierarchy for the PCC toolchain.

Every layer of the system raises a subclass of :class:`PccError`, so callers
can catch one exception type at API boundaries while tests can assert on the
precise failure mode.  The distinction between producer-side errors
(:class:`CertificationError`) and consumer-side errors
(:class:`ValidationError`) matters: the consumer must *never* trust anything
produced by the other side, so validation failures carry enough context to be
logged but are deliberately not recoverable.
"""

from __future__ import annotations


class PccError(Exception):
    """Base class for all errors raised by this package."""


class AssemblyError(PccError):
    """The assembly source text is malformed or uses an unknown instruction."""


class EncodingError(PccError):
    """A binary instruction encoding or decoding failed."""


class MachineError(PccError):
    """The concrete machine hit an illegal state (bad pc, bad register)."""


class SafetyViolation(MachineError):
    """The abstract machine blocked: an rd()/wr() safety check failed.

    In the paper's semantics the abstract machine has no transition for this
    case; we surface it as an exception so tests can assert that uncertified
    code blocks and certified code never does.

    ``pc``, ``address`` and ``kind`` (``"rd"`` or ``"wr"``) identify the
    faulting access so that consumers — notably the dispatch runtime's
    quarantine log — can report *which* check failed and where.
    """

    def __init__(self, message: str, pc: int | None = None,
                 address: int | None = None,
                 kind: str | None = None) -> None:
        super().__init__(message)
        self.pc = pc
        self.address = address
        self.kind = kind


class BudgetExceeded(MachineError):
    """An invocation overran its per-packet cycle budget.

    Raised by :meth:`repro.alpha.engine.ExecutionEngine.run_budgeted`
    when the modeled cycle clock passes the caller's budget.  This is a
    *liveness* policy, not a safety one: a PCC-certified program can
    never violate rd()/wr(), but nothing in the proof bounds how long it
    runs, so the dispatch runtime enforces budgets at retire time.
    """

    def __init__(self, message: str, budget: int | None = None,
                 cycles: int | None = None,
                 steps: int | None = None) -> None:
        super().__init__(message)
        self.budget = budget
        self.cycles = cycles
        self.steps = steps


class LogicError(PccError):
    """Ill-formed logical term or formula (wrong arity, unknown operator)."""


class VcGenError(PccError):
    """Verification-condition generation failed (e.g. a backward branch
    without a loop invariant, or a branch out of the code region)."""


class ProofError(PccError):
    """A proof object is ill-formed or does not prove its claimed formula."""


class LfError(PccError):
    """LF type checking failed: the proof term is not well typed."""


class ProverError(PccError):
    """The automatic prover could not certify a safety predicate.

    This is a *producer-side* failure: the program may still be safe, but
    the prover was not smart enough.  It never indicates unsafety by itself,
    though the message often points at the offending check.
    """


class CertificationError(PccError):
    """Producer-side pipeline failure while building a PCC binary."""


class ValidationError(PccError):
    """Consumer-side rejection of a PCC binary (tampering, bad proof,
    malformed container, or proof/predicate mismatch)."""


class PatchError(ValidationError):
    """Consumer-side rejection of an incremental proof patch (wrong base,
    stale policy fingerprint, unresolvable or corrupted subproof, or a
    malformed patch container).

    Subclasses :class:`ValidationError` because a patch failure is a
    validation failure — code paths that reject on ``ValidationError``
    reject bad patches with no changes — but the distinct type lets the
    upgrade plane fall back to full certification on *patch* problems
    specifically.
    """


class UnknownExtensionError(PccError, KeyError):
    """A control-plane call named an extension that is not attached.

    Subclasses :class:`KeyError` so callers that treated the runtime's
    extension table as a plain mapping keep working, but the message
    names the missing extension and lists what *is* attached — a bare
    ``KeyError('x')`` from a fleet control plane is useless at 3am.
    """

    def __init__(self, name: str, attached: list[str] | tuple[str, ...]
                 ) -> None:
        listing = ", ".join(sorted(attached)) if attached else "none"
        super().__init__(f"no extension named {name!r} is attached "
                         f"(attached: {listing})")
        self.name = name
        self.attached = tuple(sorted(attached))

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its single arg; restore the message.
        return self.args[0]


class BpfError(PccError):
    """Base class for BPF baseline errors."""


class BpfVerifyError(BpfError):
    """The BPF static verifier rejected a filter program."""


class BpfRuntimeError(BpfError):
    """The BPF interpreter terminated a filter for an out-of-range access."""


class SfiError(PccError):
    """The SFI rewriter could not sandbox an instruction sequence."""


class M3Error(PccError):
    """Safe-language (Modula-3 subset) front end or compiler error."""


class M3RuntimeError(M3Error):
    """A run-time bounds check failed in compiled safe-language code."""
