"""Kernel-side extension loading: caching + batch validation.

A kernel serving heavy traffic reloads the same few extensions
constantly, and the paper's Figure 9 shows the whole game is amortizing
the one-time validation cost.  This module amortizes it *across reloads*
as well: a content-addressed cache maps

    ``sha256(binary bytes)  x  policy fingerprint  ->  ValidationReport``

so a re-submitted identical binary is admitted in O(hash) without
re-running parse -> VCgen -> LF type-check.

Why caching cannot weaken safety: the cache stores only consumer-side
*verdicts*, keyed on the exact bytes received and on a fingerprint
covering **every** field of the :class:`~repro.vcgen.policy.SafetyPolicy`
(name, precondition, postcondition, and the semantic checker factory).
Validation is a pure function of (bytes, precondition, postcondition):
the same bytes under the same policy always re-derive the same safety
predicate and the same proof-check verdict, so replaying a stored verdict
is exactly as safe as recomputing it.  Any tampering — a flipped code
bit, a swapped proof, an edited invariant table — changes the SHA-256 of
the submission and therefore *misses* the cache; any policy change —
including one negotiated at run time (:mod:`repro.pcc.negotiate`) —
changes the fingerprint and forces a fresh validation.  Only successful
validations are cached: rejections are cheap to reproduce and caching
them would let a colliding key mask a later, genuinely valid submission.

:class:`ExtensionLoader` also fans *independent* submissions out over a
``multiprocessing`` pool (:meth:`ExtensionLoader.validate_batch`) with
per-item error isolation: one bad binary rejects that item only.

**Pre-screening** (opt-in, ``prescreen=True``): before paying VCGen +
LF proof checking on a cache miss, the loader runs the static-analysis
fast-reject pass (:func:`repro.analysis.prescreen.prescreen_blob`).
The pre-screen never *admits* — a binary it has no objection to still
goes through full validation — so it cannot weaken safety; it only
makes rejection of malformed and provably-unsafe binaries cheap.
Unlike the verdict cache, pre-screen results (including rejections)
*are* cached: a colliding key could at worst cause a spurious cheap
rejection of a binary full validation would also have to re-examine,
never a spurious admission, and the common adversarial pattern is the
same bad bytes hammered repeatedly.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.lf.binary import serialize_lf
from repro.lf.encode import encode_formula
from repro.pcc.container import PccBinary
from repro.pcc.negotiate import PolicyProposal, accept_policy
from repro.pcc.validate import ValidationReport, validate
from repro.vcgen.policy import SafetyPolicy

__all__ = [
    "BatchItem",
    "ExtensionLoader",
    "LoaderStats",
    "policy_fingerprint",
]


def policy_fingerprint(policy: SafetyPolicy) -> str:
    """A stable content hash covering every field of ``policy``.

    The precondition and postcondition are hashed through their canonical
    LF wire encoding (deterministic; the same bytes the negotiation
    protocol ships), so structurally equal formulas fingerprint equally
    regardless of object identity.  ``make_checkers`` never participates
    in validation, but it is still covered (by module-qualified name) so
    that *no* policy-field change can ever reuse a cached verdict.
    """
    hasher = hashlib.sha256()
    for part in (b"name", policy.name.encode()):
        hasher.update(len(part).to_bytes(4, "little"))
        hasher.update(part)
    for formula in (policy.precondition, policy.postcondition):
        table, stream = serialize_lf(encode_formula(formula, {}, 0))
        for part in (table, stream):
            hasher.update(len(part).to_bytes(4, "little"))
            hasher.update(part)
    checkers = policy.make_checkers
    if checkers is None:
        marker = b"no-semantics"
    else:
        marker = (f"{getattr(checkers, '__module__', '?')}."
                  f"{getattr(checkers, '__qualname__', repr(checkers))}"
                  ).encode()
    hasher.update(len(marker).to_bytes(4, "little"))
    hasher.update(marker)
    return hasher.hexdigest()


@dataclass(frozen=True)
class LoaderStats:
    """A point-in-time snapshot of the loader's counters.

    ``hits + misses == loads`` always holds: every :meth:`~ExtensionLoader
    .load` is counted exactly once, including loads that end in rejection
    (those count as misses — rejections are never cached).

    ``prescreen_checks`` counts fresh pre-screen analyses (cache misses
    in the pre-screen result cache); ``prescreen_rejects`` counts loads
    turned away by a pre-screen verdict, cached or fresh.  Both stay 0
    on loaders constructed without ``prescreen=True``.

    ``pool_timeouts`` counts batch jobs whose pool result did not arrive
    within the per-item timeout (a wedged or killed worker);
    ``pool_retries`` counts jobs re-submitted to a fresh pool after a
    timeout; ``pool_fallbacks`` counts jobs that ultimately degraded to
    in-process validation.  All three stay 0 on a healthy pool.

    ``patch_loads`` counts :meth:`~ExtensionLoader.load_patch` calls;
    ``patch_hits`` the subset whose patch applied and whose reassembled
    container was admitted; ``patch_rejects`` counts patches refused
    (wrong base, wrong fingerprint, tampered subproof, or a reassembled
    container that failed full validation).  ``patch_bytes_saved``
    accumulates ``len(reassembled container) - len(patch wire)`` over
    successful patch loads — the transport bytes the incremental path
    avoided shipping.
    """

    loads: int
    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    prescreen_checks: int = 0
    prescreen_rejects: int = 0
    pool_timeouts: int = 0
    pool_retries: int = 0
    pool_fallbacks: int = 0
    patch_loads: int = 0
    patch_hits: int = 0
    patch_rejects: int = 0
    patch_bytes_saved: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.loads if self.loads else 0.0


@dataclass(frozen=True)
class BatchItem:
    """Per-item outcome of :meth:`ExtensionLoader.validate_batch`."""

    index: int
    report: ValidationReport | None
    error: str | None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.report is not None

    def unwrap(self) -> ValidationReport:
        """The report, or raise the item's :class:`ValidationError`."""
        if self.report is None:
            raise ValidationError(self.error or "validation failed")
        return self.report


# The pool's worker-side policy.  Set by the fork-inherited initializer;
# policies carry closures (``make_checkers``) and cannot be pickled, so
# batch parallelism requires the ``fork`` start method (the initargs are
# inherited through the forked address space, never pickled).  Where fork
# is unavailable the loader falls back to in-process validation.
_WORKER_POLICY: SafetyPolicy | None = None


def _pool_init(policy: SafetyPolicy) -> None:
    global _WORKER_POLICY
    _WORKER_POLICY = policy


def _pool_validate(job: tuple[int, bytes]) -> tuple[int, object, str | None]:
    index, blob = job
    try:
        return index, validate(blob, _WORKER_POLICY), None
    except ValidationError as error:
        return index, None, str(error)


def _fork_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class ExtensionLoader:
    """A caching, batching front end to :func:`repro.pcc.validate`.

    Thread-safe: the cache and counters live behind one lock; validation
    itself runs outside it, so concurrent cold loads overlap.
    """

    def __init__(self, policy: SafetyPolicy, capacity: int = 64,
                 prescreen: bool = False,
                 analysis_context=None, proof_store=None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.policy = policy
        self.capacity = capacity
        self.prescreen = prescreen
        # Shared content-addressed subproof store for the incremental
        # path (:meth:`load_patch`); optional and untrusted — see
        # :mod:`repro.proof.store`.
        self.proof_store = proof_store
        self.fingerprint = policy_fingerprint(policy)
        self._cache: OrderedDict[tuple[str, str], ValidationReport] = \
            OrderedDict()
        # Pre-screen verdicts (including rejections — see the module
        # docstring for why that is safe) under the same keying.
        self._analysis: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._analysis_context = analysis_context
        self._lock = threading.Lock()
        self._loads = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._prescreen_checks = 0
        self._prescreen_rejects = 0
        self._pool_timeouts = 0
        self._pool_retries = 0
        self._pool_fallbacks = 0
        self._patch_loads = 0
        self._patch_hits = 0
        self._patch_rejects = 0
        self._patch_bytes_saved = 0

    # -- keying ----------------------------------------------------------

    @staticmethod
    def _blob(data: bytes | PccBinary) -> bytes:
        return data.to_bytes() if isinstance(data, PccBinary) else bytes(data)

    def cache_key(self, data: bytes | PccBinary) -> tuple[str, str]:
        """``(sha256(binary bytes), policy fingerprint)``."""
        return (hashlib.sha256(self._blob(data)).hexdigest(),
                self.fingerprint)

    # -- single loads ----------------------------------------------------

    def load(self, data: bytes | PccBinary,
             measure_memory: bool = False) -> ValidationReport:
        """Admit ``data``: O(hash) on a cache hit, full validation on a
        miss.  Raises :class:`ValidationError` exactly as ``validate``
        would; rejections are never cached.

        ``measure_memory=True`` forces a fresh validation (a cached
        report's tracemalloc peak would be stale) and refreshes the cache
        entry with the newly measured report.
        """
        blob = self._blob(data)
        key = self.cache_key(blob)
        with self._lock:
            self._loads += 1
            if not measure_memory:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    return cached
            self._misses += 1
        if self.prescreen:
            self._prescreen_or_raise(key, blob)
        report = validate(blob, self.policy, measure_memory)
        self._store(key, report)
        return report

    def load_patch(self, patch, base: bytes | PccBinary
                   ) -> tuple[ValidationReport, bytes]:
        """Admit an incremental :class:`~repro.pcc.incremental.ProofPatch`
        against a base container this consumer already holds.

        Returns ``(report, reassembled bytes)``: the patch is applied
        (every subproof re-hashed against its content address, missing
        ones resolved from this loader's ``proof_store`` or the base),
        and the reassembled container then goes through the ordinary
        :meth:`load` — the full VCGen + LF type-check pipeline, or an
        O(hash) cache hit if these exact bytes were admitted before.  A
        patch can therefore never admit anything :meth:`load` would not.
        Raises :class:`~repro.errors.PatchError` on any patch mismatch
        and :class:`ValidationError` if the reassembled container fails
        validation; both count as ``patch_rejects``.
        """
        # Imported lazily to keep the plain validation path free of the
        # incremental machinery (and to avoid a module cycle).
        from repro.pcc.incremental import ProofPatch, apply_patch

        with self._lock:
            self._patch_loads += 1
        base_blob = self._blob(base)
        try:
            if isinstance(patch, (bytes, bytearray)):
                patch = ProofPatch.from_bytes(bytes(patch))
            reassembled = apply_patch(patch, base_blob, self.policy,
                                      store=self.proof_store)
            blob = reassembled.to_bytes()
            report = self.load(blob)
        except ValidationError:
            with self._lock:
                self._patch_rejects += 1
            raise
        with self._lock:
            self._patch_hits += 1
            self._patch_bytes_saved += max(0, len(blob) - patch.size)
        return report, blob

    # -- pre-screening ---------------------------------------------------

    def _prescreen_verdict(self, key: tuple[str, str], blob: bytes):
        """The cached-or-fresh pre-screen verdict for ``blob``."""
        with self._lock:
            verdict = self._analysis.get(key)
            if verdict is not None:
                self._analysis.move_to_end(key)
                return verdict
        # Imported lazily: the analysis subsystem is optional machinery
        # the plain validation path never needs.
        from repro.analysis.intervals import context_for_policy
        from repro.analysis.prescreen import prescreen_blob

        context = self._analysis_context
        if context is None:
            context = context_for_policy(self.policy)
        verdict = prescreen_blob(blob, self.policy, context)
        with self._lock:
            self._prescreen_checks += 1
            self._analysis[key] = verdict
            while len(self._analysis) > self.capacity:
                self._analysis.popitem(last=False)
        return verdict

    def _prescreen_or_raise(self, key: tuple[str, str],
                            blob: bytes) -> None:
        verdict = self._prescreen_verdict(key, blob)
        if not verdict.ok:
            with self._lock:
                self._prescreen_rejects += 1
            raise ValidationError(str(verdict))

    def _store(self, key: tuple[str, str], report: ValidationReport) -> None:
        with self._lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                self._cache[key] = report
                return
            self._cache[key] = report
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
                self._evictions += 1

    # -- batch loads -----------------------------------------------------

    def validate_batch(self, items, processes: int | None = None, *,
                       timeout: float | None = 30.0, retries: int = 1,
                       retry_backoff: float = 0.05) -> list[BatchItem]:
        """Validate many independent submissions, fanning cache misses
        out over a ``multiprocessing`` pool.

        Returns one :class:`BatchItem` per input, in input order.  Errors
        are isolated per item: a bad binary yields ``error`` on its own
        item and never disturbs its neighbours.  ``processes=0`` (or a
        platform without the ``fork`` start method) validates serially
        in-process; results are identical either way.

        The pool is treated as unreliable machinery, never as a point of
        failure: each item is collected with a per-item ``timeout``
        (seconds; ``None`` waits forever), items whose pool worker is
        wedged or killed are retried up to ``retries`` times on a *fresh*
        pool (exponential ``retry_backoff``), and anything still
        unresolved degrades to in-process validation.  A hostile or
        hung pool can therefore slow a batch down, but it can never hang
        ``validate_batch`` or change a verdict.  The ``pool_timeouts`` /
        ``pool_retries`` / ``pool_fallbacks`` counters in :meth:`stats`
        record every such degradation.
        """
        blobs = [self._blob(item) for item in items]
        results: list[BatchItem | None] = [None] * len(blobs)
        # Within-batch dedup: byte-identical submissions validate once;
        # every duplicate index shares the one verdict.
        key_indices: dict[tuple[str, str], list[int]] = {}
        pending: list[tuple[tuple[str, str], bytes]] = []
        with self._lock:
            for index, blob in enumerate(blobs):
                key = self.cache_key(blob)
                self._loads += 1
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    results[index] = BatchItem(index, cached, None,
                                               cached=True)
                    continue
                self._misses += 1
                if key not in key_indices:
                    key_indices[key] = []
                    pending.append((key, blob))
                key_indices[key].append(index)

        if self.prescreen and pending:
            # Fast-reject before paying the pool fan-out; a pre-screen
            # rejection is one full validation itself would reach.
            survivors = []
            for key, blob in pending:
                verdict = self._prescreen_verdict(key, blob)
                if verdict.ok:
                    survivors.append((key, blob))
                    continue
                with self._lock:
                    self._prescreen_rejects += len(key_indices[key])
                for index in key_indices[key]:
                    results[index] = BatchItem(index, None, str(verdict))
            pending = survivors

        jobs = [(job_id, blob)
                for job_id, (__, blob) in enumerate(pending)]
        context = _fork_context()
        if processes is None:
            processes = min(len(jobs), multiprocessing.cpu_count())
        if len(jobs) < 2 or processes < 2 or context is None:
            outcomes = [_serial_validate(self.policy, job) for job in jobs]
        else:
            outcomes = self._pool_outcomes(context, jobs, processes,
                                           timeout, retries, retry_backoff)

        for job_id, report, error in outcomes:
            key = pending[job_id][0]
            if report is not None:
                self._store(key, report)
            for index in key_indices[key]:
                if report is not None:
                    results[index] = BatchItem(index, report, None)
                else:
                    results[index] = BatchItem(index, None, error)
        return results

    def _pool_outcomes(self, context, jobs, processes,
                       timeout, retries, retry_backoff):
        """Collect pool verdicts with per-item timeouts; survivors of a
        wedged/killed pool retry on a fresh one, then degrade serial.

        ``pool.map`` would block forever on a worker that was SIGKILLed
        mid-job, taking :meth:`validate_batch` (and every admission
        behind it) down with it.  ``apply_async`` + ``get(timeout)``
        bounds the damage to one timeout per unresolved item.
        """
        remaining = list(jobs)
        outcomes = []
        attempt = 0
        while remaining and attempt <= retries:
            if attempt:
                with self._lock:
                    self._pool_retries += 1
                time.sleep(retry_backoff * (2 ** (attempt - 1)))
            pool = context.Pool(min(processes, len(remaining)),
                                initializer=_pool_init,
                                initargs=(self.policy,))
            try:
                handles = [(job, pool.apply_async(_pool_validate, (job,)))
                           for job in remaining]
                unresolved = []
                for job, handle in handles:
                    try:
                        outcomes.append(handle.get(timeout))
                    except multiprocessing.TimeoutError:
                        with self._lock:
                            self._pool_timeouts += 1
                        unresolved.append(job)
                    except Exception:
                        # _pool_validate returns ValidationError as data;
                        # an exception here is pool plumbing (worker
                        # killed, pipe torn) — retry the item.
                        unresolved.append(job)
                remaining = unresolved
            finally:
                pool.terminate()
                pool.join()
            attempt += 1
        if remaining:
            with self._lock:
                self._pool_fallbacks += len(remaining)
            outcomes.extend(_serial_validate(self.policy, job)
                            for job in remaining)
        return outcomes

    # -- management ------------------------------------------------------

    def evict(self, data: bytes | PccBinary) -> bool:
        """Explicitly drop the cache entry for ``data``; True if present."""
        key = self.cache_key(data)
        with self._lock:
            if key in self._cache:
                del self._cache[key]
                self._evictions += 1
                return True
            return False

    def clear(self) -> int:
        """Drop every entry; returns how many were evicted."""
        with self._lock:
            dropped = len(self._cache)
            self._cache.clear()
            self._evictions += dropped
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def __contains__(self, data: bytes | PccBinary) -> bool:
        key = self.cache_key(data)
        with self._lock:
            return key in self._cache

    def stats(self) -> LoaderStats:
        with self._lock:
            return LoaderStats(self._loads, self._hits, self._misses,
                               self._evictions, len(self._cache),
                               self.capacity, self._prescreen_checks,
                               self._prescreen_rejects,
                               self._pool_timeouts, self._pool_retries,
                               self._pool_fallbacks,
                               self._patch_loads, self._patch_hits,
                               self._patch_rejects,
                               self._patch_bytes_saved)

    # -- negotiation -----------------------------------------------------

    def negotiate(self, proposal: PolicyProposal | bytes,
                  capacity: int | None = None) -> "ExtensionLoader":
        """Accept a run-time policy proposal (paper §4) and return a
        fresh loader bound to the negotiated policy.

        The negotiated policy's fingerprint necessarily differs from this
        loader's (its precondition differs, and the fingerprint covers
        it), so verdicts cached here can never leak across: the new
        loader starts cold and every binary re-validates under the new
        contract.
        """
        negotiated = accept_policy(self.policy, proposal)
        # The explicit analysis context (if any) described *this* policy's
        # regions; the negotiated loader re-derives its own from the new
        # policy rather than inheriting a stale one.
        return ExtensionLoader(negotiated,
                               self.capacity if capacity is None
                               else capacity,
                               prescreen=self.prescreen)


def _serial_validate(policy: SafetyPolicy, job: tuple[int, bytes]
                     ) -> tuple[int, ValidationReport | None, str | None]:
    index, blob = job
    try:
        return index, validate(blob, policy), None
    except ValidationError as error:
        return index, None, str(error)
