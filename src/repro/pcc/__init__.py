"""The proof-carrying-code mechanism itself (paper §2, Figure 1).

* :mod:`repro.pcc.container` — the PCC binary: native code, relocation
  (symbol table), proof, and loop-invariant sections, with the Figure 7
  layout accounting;
* :mod:`repro.pcc.certify` — the producer: assemble, compute the safety
  predicate, prove it, encode the proof (the "compilation & certification"
  box of Figure 1);
* :mod:`repro.pcc.validate` — the consumer: parse the untrusted container,
  recompute the safety predicate from the code it actually received, and
  type-check the enclosed proof against it ("proof validation");
* :mod:`repro.pcc.loader` — the kernel-side loading subsystem: a
  content-addressed validation cache (sha256 of the binary x policy
  fingerprint) plus parallel batch validation with per-item error
  isolation;
* :mod:`repro.pcc.api` — the high-level producer/consumer façade used by
  the examples;
* :mod:`repro.pcc.incremental` — block-level proof patches: reuse
  unchanged obligations' subproofs from a content-addressed store
  (:mod:`repro.proof.store`), ship only the changed blocks' proofs, and
  fully revalidate the reassembled container before admission.
"""

from repro.pcc.container import PccBinary, SectionLayout
from repro.pcc.certify import certify
from repro.pcc.validate import validate, ValidationReport
from repro.pcc.loader import (
    BatchItem,
    ExtensionLoader,
    LoaderStats,
    policy_fingerprint,
)
from repro.pcc.api import CodeProducer, CodeConsumer, LoadedExtension
from repro.pcc.negotiate import PolicyProposal, propose_policy, accept_policy
from repro.pcc.incremental import (
    ProofPatch,
    apply_patch,
    block_diff,
    certify_incremental,
    obligation_digest,
)

__all__ = [
    "PccBinary",
    "SectionLayout",
    "certify",
    "validate",
    "ValidationReport",
    "BatchItem",
    "ExtensionLoader",
    "LoaderStats",
    "policy_fingerprint",
    "CodeProducer",
    "CodeConsumer",
    "LoadedExtension",
    "PolicyProposal",
    "propose_policy",
    "accept_policy",
    "ProofPatch",
    "apply_patch",
    "block_diff",
    "certify_incremental",
    "obligation_digest",
]
