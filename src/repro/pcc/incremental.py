"""Incremental certification: block-level proof patches (§ upgrades).

Every extension upgrade today regenerates and rechecks the full proof
even when one basic block changed.  But the safety predicate is a
conjunction of per-cut-point obligations (:func:`repro.vcgen.vcgen.
safety_obligations`), each depending only on its own acyclic fragment of
the control-flow graph — so an edit confined to one loop body changes
exactly one conjunct, and every other conjunct's proof can be *reused*
byte for byte from the old container via the content-addressed
:class:`repro.proof.store.ProofStore`.

The producer side (:func:`certify_incremental`) diffs basic blocks with
:mod:`repro.analysis.cfg`, recomputes the new obligations with the
ordinary trusted VC generator, harvests the old container's subproofs
into the store, proves only the obligations whose formula digest has no
stored proof, and emits a :class:`ProofPatch`: the new code and
invariants, the ordered subproof digests for every conjunct, and store
entries for just the changed ones.

The consumer side (:func:`apply_patch`) is deliberately boring: it
resolves each digest (patch entries, then the shared store, then the
base container's own subproofs), re-hashes every resolved blob against
its claimed digest, reassembles the full LF proof, and returns an
ordinary :class:`~repro.pcc.container.PccBinary` — which then goes
through the unmodified, full :func:`repro.pcc.validate.validate`
pipeline (VC recomputation + LF type-checking) before anything is
admitted.  A patch is a *transport optimization*, never a trust
shortcut: nothing in this module can admit code, and every mismatch
raises :class:`repro.errors.PatchError` (fail closed).  The
differential suite ``tests/pcc/test_incremental_differential.py`` pins
the two paths to bit-identical admission verdicts.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.alpha.encoding import decode_program, encode_program
from repro.alpha.isa import Program
from repro.alpha.parser import parse_program
from repro.analysis.cfg import build_cfg
from repro.errors import CertificationError, LfError, PatchError, PccError
from repro.lf.binary import deserialize_lf, serialize_lf
from repro.lf.encode import decode_logic_formula, encode_formula, encode_proof
from repro.lf.syntax import LfConst, LfTerm, lf_app, spine
from repro.logic.formulas import And, Formula, Truth
from repro.pcc.certify import canonicalize_invariants
from repro.pcc.container import (
    PccBinary,
    _read_varint,
    _varint,
    pack_invariants,
    pack_proof,
    unpack_invariants,
    unpack_proof,
)
from repro.pcc.loader import policy_fingerprint
from repro.proof.checker import check_proof
from repro.proof.store import (
    ProofStore,
    frame_sections,
    subproof_digest,
    unframe_sections,
)
from repro.prover import Prover
from repro.vcgen.policy import SafetyPolicy
from repro.vcgen.vcgen import conjoin_obligations, safety_obligations

__all__ = [
    "BlockDiff",
    "IncrementalResult",
    "ProofPatch",
    "apply_patch",
    "block_diff",
    "certify_incremental",
    "obligation_digest",
    "split_conjunction",
]

_MAGIC = b"PCCP"
_VERSION = 1
_CLOCK = time.perf_counter


def obligation_digest(formula: Formula) -> str:
    """Content address of a proof *obligation* (not of its proof).

    The store binds obligation digests to subproof digests; keying by the
    formula's canonical LF wire encoding means two obligations match only
    if the consumer-recomputed formulas are structurally identical —
    binder hints and Python hash seeds never enter the key.
    """
    return hashlib.sha256(
        frame_sections(*serialize_lf(encode_formula(formula, {}, 0)))
    ).hexdigest()


def _program_key(code: bytes, invariants: bytes) -> str:
    """Manifest key for a program's obligation list.

    The effective obligations are a pure function of (code, invariants,
    policy), so this hash plus the policy fingerprint addresses them —
    a warm upgrade chain looks up its base's obligation digests instead
    of rerunning the VC generator (producer-side shortcut only)."""
    return hashlib.sha256(
        len(code).to_bytes(4, "little") + code + invariants).hexdigest()


# -- basic-block diffing ---------------------------------------------------

@dataclass(frozen=True)
class BlockDiff:
    """Which basic blocks differ between two programs.

    ``changed`` holds new-program block indices (paired positionally with
    the old program's blocks; unmatched trailing blocks on either side
    count as changed).  This is *guidance only* — the proof patch is keyed
    by obligation digests, so a wrong diff can waste prover time but
    never admit a wrong proof.
    """

    changed: tuple[int, ...]
    old_blocks: int
    new_blocks: int

    @property
    def unchanged(self) -> int:
        return min(self.old_blocks, self.new_blocks) - len(
            [b for b in self.changed
             if b < min(self.old_blocks, self.new_blocks)])


def block_diff(old_program: Program, new_program: Program) -> BlockDiff:
    """Pairwise basic-block comparison via the analysis CFG."""
    old_cfg = build_cfg(old_program)
    new_cfg = build_cfg(new_program)
    changed: list[int] = []
    for index, block in enumerate(new_cfg.blocks):
        if index >= len(old_cfg.blocks):
            changed.append(index)
            continue
        old_block = old_cfg.blocks[index]
        if (old_program[old_block.start:old_block.end]
                != new_program[block.start:block.end]):
            changed.append(index)
    for index in range(len(new_cfg.blocks), len(old_cfg.blocks)):
        # Old blocks with no new counterpart: report against the last
        # new block so the count reflects a shrink.
        if new_cfg.blocks and (len(new_cfg.blocks) - 1) not in changed:
            changed.append(len(new_cfg.blocks) - 1)
        break
    return BlockDiff(tuple(sorted(set(changed))),
                     len(old_cfg.blocks), len(new_cfg.blocks))


# -- splitting and composing conjunction proofs ----------------------------

def _effective_parts(obligations: tuple[Formula, ...]) -> list[Formula]:
    """The obligations that survive :func:`conjoin_obligations`' unit
    laws — ``Truth`` conjuncts drop out of the fold and need no proof."""
    return [part for part in obligations if not isinstance(part, Truth)]


def split_conjunction(proof_term: LfTerm, count: int) -> list[LfTerm]:
    """Split a left-folded ``andi`` proof into its ``count`` conjunct
    subproofs, in obligation order.

    The prover proves ``And(l, r)`` with ``andi(F(l), F(r), P(l), P(r))``
    and the predicate is a left fold, so the last conjunct's proof peels
    off the right ``count - 1`` times.  Raises :class:`PatchError` if the
    term does not decompose (a base proof that certifies a differently
    shaped predicate than claimed).
    """
    if count == 0:
        return []
    parts: list[LfTerm] = []
    current = proof_term
    for __ in range(count - 1):
        head, args = spine(current)
        if head != LfConst("andi") or len(args) != 4:
            raise PatchError(
                "base proof does not decompose into the expected "
                f"conjunction of {count} obligations")
        parts.append(args[3])
        current = args[2]
    parts.append(current)
    parts.reverse()
    return parts


def _compose_conjunction(formulas: list[Formula],
                         terms: list[LfTerm]) -> LfTerm:
    """Left-fold subproofs back into one ``andi`` proof term, mirroring
    the fold in :func:`conjoin_obligations` node for node."""
    if not formulas:
        return LfConst("truei")
    accumulated_formula = formulas[0]
    accumulated_term = terms[0]
    for formula, term in zip(formulas[1:], terms[1:]):
        accumulated_term = lf_app(
            LfConst("andi"),
            encode_formula(accumulated_formula, {}, 0),
            encode_formula(formula, {}, 0),
            accumulated_term, term)
        accumulated_formula = And(accumulated_formula, formula)
    return accumulated_term


# -- the patch container ---------------------------------------------------

@dataclass(frozen=True)
class ProofPatch:
    """A block-level proof patch: everything a consumer needs to rebuild
    a full PCC binary from a base container it already holds.

    All fields are *untrusted* — the consumer recomputes obligations from
    ``code``/``invariants`` under its own policy, verifies every resolved
    subproof blob against its digest, and fully revalidates the
    reassembled container.  ``part_digests`` lists the subproof content
    address for every non-trivial conjunct of the new predicate in
    obligation order; ``entries`` carries the blobs the base container
    cannot supply (the changed blocks' fresh proofs).
    """

    base_digest: str
    fingerprint: str
    code: bytes
    invariants: bytes
    part_digests: tuple[str, ...]
    entries: Mapping[str, bytes]
    changed_blocks: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        chunks = [_MAGIC, _varint(_VERSION),
                  bytes.fromhex(self.base_digest),
                  bytes.fromhex(self.fingerprint),
                  _varint(len(self.code)), self.code,
                  _varint(len(self.invariants)), self.invariants,
                  _varint(len(self.part_digests))]
        for digest in self.part_digests:
            chunks.append(bytes.fromhex(digest))
        chunks.append(_varint(len(self.entries)))
        for digest in sorted(self.entries):
            blob = self.entries[digest]
            chunks.append(bytes.fromhex(digest))
            chunks.append(_varint(len(blob)))
            chunks.append(blob)
        chunks.append(_varint(len(self.changed_blocks)))
        for block in self.changed_blocks:
            chunks.append(_varint(block))
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProofPatch":
        try:
            return cls._parse(data)
        except PatchError:
            raise
        except (PccError, ValueError, IndexError) as error:
            raise PatchError(f"malformed proof patch: {error}") from error

    @classmethod
    def _parse(cls, data: bytes) -> "ProofPatch":
        if data[:4] != _MAGIC:
            raise PatchError("proof patch magic mismatch")
        offset = 4
        version, offset = _read_varint(data, offset)
        if version != _VERSION:
            raise PatchError(f"unsupported proof patch version {version}")

        def take(count: int) -> bytes:
            nonlocal offset
            if offset + count > len(data):
                raise PatchError("proof patch truncated")
            piece = data[offset:offset + count]
            offset += count
            return piece

        base_digest = take(32).hex()
        fingerprint = take(32).hex()
        code_len, offset = _read_varint(data, offset)
        code = take(code_len)
        inv_len, offset = _read_varint(data, offset)
        invariants = take(inv_len)
        part_count, offset = _read_varint(data, offset)
        if part_count > 1_000_000:
            raise PatchError("proof patch part count implausible")
        part_digests = tuple(take(32).hex() for __ in range(part_count))
        entry_count, offset = _read_varint(data, offset)
        if entry_count > part_count:
            raise PatchError("proof patch carries more entries than parts")
        entries: dict[str, bytes] = {}
        for __ in range(entry_count):
            digest = take(32).hex()
            blob_len, offset = _read_varint(data, offset)
            entries[digest] = take(blob_len)
        block_count, offset = _read_varint(data, offset)
        if block_count > 1_000_000:
            raise PatchError("proof patch block count implausible")
        changed: list[int] = []
        for __ in range(block_count):
            block, offset = _read_varint(data, offset)
            changed.append(block)
        if offset != len(data):
            raise PatchError("proof patch has trailing bytes")
        return cls(base_digest, fingerprint, code, invariants,
                   part_digests, entries, tuple(changed))


# -- producer side ---------------------------------------------------------

@dataclass(frozen=True)
class IncrementalResult:
    """What :func:`certify_incremental` produced, with reuse accounting.

    ``binary`` is assembled lazily by running the patch through
    :func:`apply_patch` against the base: the patch *is* the product,
    so certification never pays for composing and packing a container
    the consumer rebuilds anyway — and by construction the producer's
    container is bit-identical to the consumer's reconstruction, so the
    loader's content-addressed cache keys line up.
    """

    patch: ProofPatch
    program: Program
    predicate: Formula
    total_parts: int
    reused_parts: int
    proved_parts: int
    changed_blocks: tuple[int, ...]
    certify_seconds: float
    _base_blob: bytes = field(repr=False, compare=False, default=b"")
    _policy: SafetyPolicy | None = field(repr=False, compare=False,
                                         default=None)
    _store: ProofStore | None = field(repr=False, compare=False,
                                      default=None)
    _binary: PccBinary | None = field(repr=False, compare=False,
                                      default=None)

    @property
    def binary(self) -> PccBinary:
        if self._binary is None:
            object.__setattr__(
                self, "_binary",
                apply_patch(self.patch, self._base_blob, self._policy,
                            store=self._store))
        return self._binary

    @property
    def patch_bytes(self) -> int:
        return self.patch.size

    @property
    def full_proof_bytes(self) -> int:
        return len(self.binary.relocation) + len(self.binary.proof)


def harvest_subproofs(base: PccBinary, policy: SafetyPolicy,
                      store: ProofStore) -> dict[str, str]:
    """Split a base container's proof per obligation and put each
    subproof in the store, binding obligation digest -> subproof digest
    under the policy fingerprint.  Returns the obligation -> subproof
    digest map (also usable without the store, for patch application
    against an evicted store).

    Warm path: a recorded manifest (upgrade chains re-harvest their own
    previous result) supplies the base's obligation digests without
    rerunning the VC generator, and when every one of them is already
    bound the proof is never unpacked or re-serialized — the harvest
    costs one digest lookup per obligation.
    """
    fingerprint = policy_fingerprint(policy)
    program_key = _program_key(base.code, base.invariants)
    part_digests = store.manifest(fingerprint, program_key)
    if part_digests is None:
        program = decode_program(base.code)
        invariants = {pc: decode_logic_formula(term)
                      for pc, term
                      in unpack_invariants(base.invariants).items()}
        obligations = safety_obligations(program, policy.precondition,
                                         policy.postcondition, invariants)
        parts = _effective_parts(obligations)
        part_digests = tuple(obligation_digest(part) for part in parts)
        store.record_manifest(fingerprint, program_key, part_digests)

    bound = [store.lookup(fingerprint, digest) for digest in part_digests]
    if all(digest is not None for digest in bound):
        return dict(zip(part_digests, bound))

    proof_term = unpack_proof(base.relocation, base.proof)
    subterms = split_conjunction(proof_term, len(part_digests))
    bindings: dict[str, str] = {}
    for part_digest, subterm in zip(part_digests, subterms):
        term_digest = store.put(subterm)
        store.bind(fingerprint, part_digest, term_digest)
        bindings[part_digest] = term_digest
    return bindings


def certify_incremental(base: bytes | PccBinary, source: str | Program,
                        policy: SafetyPolicy,
                        invariants: Mapping[int, Formula] | None = None,
                        store: ProofStore | None = None,
                        ) -> IncrementalResult:
    """Certify ``source`` by patching ``base`` instead of proving from
    scratch.

    Producer-side only: the result's :class:`ProofPatch` ships to a
    consumer, and its ``binary`` is exactly what :func:`apply_patch`
    reconstructs (so the loader's content-addressed cache keys line up).
    Proofs are reused per obligation whose formula digest already has a
    stored (or base-harvested) subproof; everything fresh is proved with
    the ordinary :class:`~repro.prover.Prover` and checked before it is
    stored.  Raises :class:`CertificationError` on prover failure —
    i.e. an unsafe changed block fails certification exactly as the
    from-scratch path would.
    """
    started = _CLOCK()
    store = store if store is not None else ProofStore()
    try:
        if isinstance(base, PccBinary):
            base_binary = base
            base_blob = base.to_bytes()
        else:
            base_blob = bytes(base)
            base_binary = PccBinary.from_bytes(base_blob)
        base_digest = hashlib.sha256(base_blob).hexdigest()
        fingerprint = policy_fingerprint(policy)

        if isinstance(source, str):
            program = parse_program(source)
        else:
            program = tuple(source)

        base_bindings = harvest_subproofs(base_binary, policy, store)
        base_subproofs = set(base_bindings.values())
        diff = block_diff(decode_program(base_binary.code), program)

        canonical = canonicalize_invariants(invariants or {})
        obligations = safety_obligations(program, policy.precondition,
                                         policy.postcondition, canonical)
        parts = _effective_parts(obligations)

        part_keys: list[str] = []
        part_digests: list[str] = []
        entries: dict[str, bytes] = {}
        reused = proved = 0
        for part in parts:
            part_key = obligation_digest(part)
            part_keys.append(part_key)
            bound = store.lookup(fingerprint, part_key)
            # get_blob re-hashes, so a rotted entry falls through to the
            # prover; reused subproofs are never deserialized here — the
            # consumer's apply_patch decodes whatever it resolves.
            blob = store.get_blob(bound) if bound is not None else None
            if blob is not None:
                reused += 1
                term_digest = bound
            else:
                proof = Prover().prove(part)
                # The producer checks its own work per obligation with
                # the Delta checker, the same way certify() checks the
                # whole proof; the LF type check runs at validation.
                check_proof(proof, part)
                term = encode_proof(proof, part)
                blob = frame_sections(*serialize_lf(term))
                term_digest = store.put(term)
                store.bind(fingerprint, part_key, term_digest)
                proved += 1
            part_digests.append(term_digest)
            if term_digest not in base_subproofs:
                entries[term_digest] = blob

        predicate = conjoin_obligations(obligations)
        code_bytes = encode_program(program)
        invariant_bytes = pack_invariants(
            {pc: encode_formula(formula, {}, 0)
             for pc, formula in canonical.items()})
        store.record_manifest(fingerprint,
                              _program_key(code_bytes, invariant_bytes),
                              tuple(part_keys))
        patch = ProofPatch(
            base_digest=base_digest,
            fingerprint=fingerprint,
            code=code_bytes,
            invariants=invariant_bytes,
            part_digests=tuple(part_digests),
            entries=entries,
            changed_blocks=diff.changed,
        )
        return IncrementalResult(
            patch=patch, program=program, predicate=predicate,
            total_parts=len(parts), reused_parts=reused, proved_parts=proved,
            changed_blocks=diff.changed,
            certify_seconds=_CLOCK() - started,
            _base_blob=base_blob, _policy=policy, _store=store)
    except (CertificationError, PatchError):
        raise
    except PccError as error:
        raise CertificationError(
            f"incremental certification failed: {error}") from error


# -- consumer side ---------------------------------------------------------

def apply_patch(patch: ProofPatch | bytes, base_blob: bytes,
                policy: SafetyPolicy,
                store: ProofStore | None = None) -> PccBinary:
    """Reassemble a full PCC binary from ``patch`` and the base container.

    Untrusted input, trusted plumbing: obligations are recomputed from
    the patch's own code/invariants under the *consumer's* policy, every
    resolved subproof blob is re-hashed against its claimed digest, and
    the returned container has NOT been validated — callers must run the
    full :func:`repro.pcc.validate.validate` (the loader's
    :meth:`~repro.pcc.loader.ExtensionLoader.load_patch` does) before
    admitting anything.  Raises :class:`PatchError` on any mismatch.
    """
    if isinstance(patch, bytes):
        patch = ProofPatch.from_bytes(patch)
    if patch.fingerprint != policy_fingerprint(policy):
        raise PatchError("proof patch was produced for a different policy "
                         "fingerprint; refusing to apply")
    if hashlib.sha256(base_blob).hexdigest() != patch.base_digest:
        raise PatchError("proof patch base digest does not match the held "
                         "base container")
    try:
        base_binary = PccBinary.from_bytes(base_blob)
        program = decode_program(patch.code)
        invariants = {pc: decode_logic_formula(term)
                      for pc, term
                      in unpack_invariants(patch.invariants).items()}
        obligations = safety_obligations(program, policy.precondition,
                                         policy.postcondition, invariants)
    except PatchError:
        raise
    except PccError as error:
        raise PatchError(f"proof patch sections rejected: {error}") from error

    parts = _effective_parts(obligations)
    if len(parts) != len(patch.part_digests):
        raise PatchError(
            f"proof patch claims {len(patch.part_digests)} obligation "
            f"subproofs but the recomputed predicate has {len(parts)}")

    base_blobs = _base_subproof_blobs(base_binary, policy)
    part_terms: list[LfTerm] = []
    for digest in patch.part_digests:
        blob = patch.entries.get(digest)
        if blob is None and store is not None:
            blob = store.get_blob(digest)
        if blob is None:
            blob = base_blobs.get(digest)
        if blob is None:
            raise PatchError(
                f"proof patch references subproof {digest[:12]}... that is "
                "neither shipped, stored, nor derivable from the base")
        if hashlib.sha256(blob).hexdigest() != digest:
            raise PatchError(
                f"subproof blob for {digest[:12]}... fails its content "
                "hash; refusing to apply a tampered patch")
        try:
            part_terms.append(deserialize_lf(*unframe_sections(blob)))
        except LfError as error:
            raise PatchError(
                f"subproof blob for {digest[:12]}... does not decode: "
                f"{error}") from error

    proof_term = _compose_conjunction(parts, part_terms)
    relocation, proof_bytes = pack_proof(proof_term)
    return PccBinary(code=patch.code, relocation=relocation,
                     proof=proof_bytes, invariants=patch.invariants)


def _base_subproof_blobs(base: PccBinary,
                         policy: SafetyPolicy) -> dict[str, bytes]:
    """subproof digest -> framed blob for every conjunct of the base
    container's proof (resolution source of last resort, so patches work
    even against an empty or evicted store)."""
    try:
        program = decode_program(base.code)
        invariants = {pc: decode_logic_formula(term)
                      for pc, term
                      in unpack_invariants(base.invariants).items()}
        obligations = safety_obligations(program, policy.precondition,
                                         policy.postcondition, invariants)
        parts = _effective_parts(obligations)
        proof_term = unpack_proof(base.relocation, base.proof)
        subterms = split_conjunction(proof_term, len(parts))
    except PatchError:
        raise
    except PccError as error:
        raise PatchError(
            f"base container rejected while applying patch: {error}"
        ) from error
    blobs: dict[str, bytes] = {}
    for subterm in subterms:
        blob = frame_sections(*serialize_lf(subterm))
        blobs[hashlib.sha256(blob).hexdigest()] = blob
    return blobs
