"""Seeded container mutation: the admission layer's chaos vocabulary.

The paper's integrity story is deliberately checksum-free: "any
tampering ... is detected at the consumer site by the proof-checking
process itself" (§2.3).  These helpers generate the tampering — seeded,
reproducible corruptions of a well-formed :class:`PccBinary` at every
structural level:

* bit-flips inside a chosen section (relocation, proof, invariants) —
  the canonical man-in-the-middle edit;
* a code **stomp** — one aligned instruction word overwritten with a
  store the policy forbids (unsafe by construction; a random code
  bit-flip may legitimately survive validation, see
  :func:`corrupt_code`);
* truncation at an arbitrary byte — a torn download;
* header garbling — magic/version/length-field damage.

A mutation returns the corrupted byte string, or ``None`` when the
container has no material to corrupt that way (e.g. a proof bit-flip on
a proof-less binary); :func:`mutants` yields only the applicable ones.
Every generator takes a ``random.Random`` (or a seed) so a failing
mutant can be replayed exactly.

The chaos suite's claim is the paper's: the loader must reject every
mutant, because validation re-derives safety from the bytes actually
received rather than trusting any integrity metadata.
"""

from __future__ import annotations

import random
import struct
from typing import Iterator

from repro.alpha.encoding import encode_instruction
from repro.alpha.isa import Reg, Stq
from repro.pcc.container import _HEADER, PccBinary

__all__ = [
    "MUTATION_KINDS",
    "bitflip_section",
    "corrupt_code",
    "garble_header",
    "mutants",
    "truncate_container",
]

#: Every mutation kind :func:`mutants` can emit.
MUTATION_KINDS = (
    "code-stomp",
    "relocation-bitflip",
    "proof-bitflip",
    "invariants-bitflip",
    "truncate",
    "header-garble",
)

_SECTIONS = ("code", "relocation", "proof", "invariants")


def _rng(seed_or_rng) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def bitflip_section(data: bytes, section: str, seed_or_rng=0) -> bytes | None:
    """Flip one random bit inside ``section`` and re-serialize.

    Lengths are untouched, so the container still parses — the damage
    must be caught semantically (undecodable code, an LF proof that no
    longer checks, an invariant table that no longer decodes), exactly
    the detection path the paper relies on.  Returns ``None`` when the
    section is empty.
    """
    if section not in _SECTIONS:
        raise ValueError(f"unknown section {section!r}; "
                         f"expected one of {_SECTIONS}")
    rng = _rng(seed_or_rng)
    binary = PccBinary.from_bytes(data)
    payload = getattr(binary, section)
    if not payload:
        return None
    index = rng.randrange(len(payload))
    bit = 1 << rng.randrange(8)
    flipped = bytearray(payload)
    flipped[index] ^= bit
    fields = {name: getattr(binary, name) for name in _SECTIONS}
    fields[section] = bytes(flipped)
    return PccBinary(**fields).to_bytes()


#: ``STQ r2, 0(r1)`` — a store of the frame length through the frame
#: base.  Packet-filter code is read-only, so no shipped proof can
#: discharge the write-safety obligation this word introduces.
_UNSAFE_STORE_WORD = encode_instruction(Stq(Reg(2), 0, Reg(1)))


def corrupt_code(data: bytes, seed_or_rng=0) -> bytes | None:
    """Overwrite one aligned code word with an unproven store.

    A random *bit-flip* in code is not guaranteed to be unsafe — it may
    land in a decoder-ignored field or produce different code that the
    shipped proof still happens to cover, and PCC is *right* to accept
    those (safety is semantic, not integrity).  A chaos invariant needs
    tampering that is unsafe by construction, so this stomps a word with
    a store the policy forbids: the VC grows an obligation the old proof
    cannot discharge, and validation must reject.
    """
    rng = _rng(seed_or_rng)
    binary = PccBinary.from_bytes(data)
    if len(binary.code) < 4:
        return None
    stomp = struct.pack("<I", _UNSAFE_STORE_WORD)
    words = len(binary.code) // 4
    index = rng.randrange(words)
    if binary.code[index * 4:index * 4 + 4] == stomp:
        index = (index + 1) % words
    code = binary.code[:index * 4] + stomp + binary.code[index * 4 + 4:]
    return PccBinary(code, binary.relocation, binary.proof,
                     binary.invariants).to_bytes()


def truncate_container(data: bytes, seed_or_rng=0) -> bytes | None:
    """Cut the container short at a random byte (possibly mid-header)."""
    if len(data) < 2:
        return None
    rng = _rng(seed_or_rng)
    return data[:rng.randrange(1, len(data))]


def garble_header(data: bytes, seed_or_rng=0) -> bytes | None:
    """Corrupt one random header byte (magic, version, flags, or a
    section length); the parser must reject before slicing."""
    if len(data) < _HEADER.size:
        return None
    rng = _rng(seed_or_rng)
    index = rng.randrange(_HEADER.size)
    garbled = bytearray(data)
    # Guarantee a change even when the random byte matches.
    garbled[index] ^= rng.randrange(1, 256)
    return bytes(garbled)


def mutants(data: bytes, seed: int = 0,
            rounds: int = 4) -> Iterator[tuple[str, bytes]]:
    """Yield ``(kind, corrupted_bytes)`` for every applicable mutation,
    ``rounds`` independent draws per kind, all derived from ``seed``.

    Kinds that do not apply to this container (empty section, container
    too small) are silently skipped, so callers can assert rejection on
    everything yielded.
    """
    makers = {
        "code-stomp": lambda r: corrupt_code(data, r),
        "relocation-bitflip":
            lambda r: bitflip_section(data, "relocation", r),
        "proof-bitflip": lambda r: bitflip_section(data, "proof", r),
        "invariants-bitflip":
            lambda r: bitflip_section(data, "invariants", r),
        "truncate": lambda r: truncate_container(data, r),
        "header-garble": lambda r: garble_header(data, r),
    }
    for kind in MUTATION_KINDS:
        for round_index in range(rounds):
            rng = random.Random(f"{seed}:{kind}:{round_index}")
            mutated = makers[kind](rng)
            if mutated is None:
                continue
            if mutated == data:
                continue   # paranoid: never yield an identical "mutant"
            yield kind, mutated
