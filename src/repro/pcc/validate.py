"""The code consumer: proof validation (paper §2.3).

:func:`validate` receives untrusted bytes and either returns a program that
is *guaranteed* safe to execute under the policy, or raises
:class:`repro.errors.ValidationError`.  The steps mirror the paper exactly:

1. parse the container and decode the native code — the consumer works
   from the code it actually received, so modifying the code changes the
   safety predicate and orphans the proof;
2. decode the loop-invariant table (untrusted data: it only ever makes the
   proof *obligation* different, never weaker than the policy);
3. recompute the safety predicate with the trusted VC generator;
4. decode the proof and LF-type-check it against ``pf(SP)``.

Nothing in this path executes, interprets, or edits the received code, and
no cryptography is involved.  The report records the measurements Table 1
tracks (validation time, proof sizes, peak checker memory).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

from repro.alpha.encoding import decode_program
from repro.alpha.isa import Program
from repro.errors import PccError, ValidationError
from repro.lf.encode import decode_logic_formula, encode_formula
from repro.lf.signature import SIGNATURE
from repro.lf.syntax import LfApp, LfConst
from repro.lf.typecheck import check_proof_term
from repro.logic.formulas import Formula
from repro.pcc.container import PccBinary, unpack_invariants, unpack_proof
from repro.vcgen.policy import SafetyPolicy
from repro.vcgen.vcgen import safety_predicate

#: ``validation_seconds`` must come from a monotonic clock: the loader's
#: cached-vs-cold comparisons and the Figure 9 startup column subtract
#: timestamps, and a wall clock (``time.time``) stepping backwards under
#: NTP adjustment would make those deltas negative.
_CLOCK = time.perf_counter


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a successful validation, with Table 1's measurements."""

    program: Program
    predicate: Formula
    validation_seconds: float
    peak_memory_bytes: int
    code_bytes: int
    relocation_bytes: int
    proof_bytes: int
    binary_bytes: int

    @property
    def instructions(self) -> int:
        return len(self.program)


def validate(data: bytes | PccBinary, policy: SafetyPolicy,
             measure_memory: bool = False) -> ValidationReport:
    """Validate an untrusted PCC binary against ``policy``.

    Returns a :class:`ValidationReport` whose ``program`` is safe to run;
    raises :class:`ValidationError` otherwise.  ``measure_memory`` turns on
    tracemalloc around the check (costs time; used by the Table 1 bench).
    """
    started = _CLOCK()
    if measure_memory:
        tracemalloc.start()
    try:
        if isinstance(data, PccBinary):
            binary = data
        else:
            binary = PccBinary.from_bytes(data)

        try:
            program = decode_program(binary.code)
        except PccError as error:
            raise ValidationError(
                f"native code section rejected: {error}") from error

        invariant_terms = unpack_invariants(binary.invariants)
        try:
            invariants = {pc: decode_logic_formula(term)
                          for pc, term in invariant_terms.items()}
        except PccError as error:
            raise ValidationError(
                f"invariant section rejected: {error}") from error

        try:
            predicate = safety_predicate(program, policy.precondition,
                                         policy.postcondition, invariants)
        except PccError as error:
            raise ValidationError(
                f"cannot compute safety predicate: {error}") from error

        proof_term = unpack_proof(binary.relocation, binary.proof)
        expected = LfApp(LfConst("pf"), encode_formula(predicate, {}, 0))
        try:
            check_proof_term(proof_term, expected, SIGNATURE)
        except PccError as error:
            raise ValidationError(
                f"proof does not validate: {error}") from error
    finally:
        if measure_memory:
            __, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = 0
    elapsed = _CLOCK() - started
    return ValidationReport(
        program=program,
        predicate=predicate,
        validation_seconds=elapsed,
        peak_memory_bytes=peak,
        code_bytes=len(binary.code),
        relocation_bytes=len(binary.relocation),
        proof_bytes=len(binary.proof),
        binary_bytes=binary.size,
    )
