"""High-level producer/consumer façade (paper Figure 1).

:class:`CodeProducer` is the application: it assembles and certifies
extensions against a published policy.  :class:`CodeConsumer` is the
kernel: it publishes the policy, validates received binaries once, and
afterwards invokes the native code directly — the whole point being that
the per-invocation path has **zero** safety checks.

A :class:`LoadedExtension` is the consumer-side handle: calling it runs the
native code on the concrete machine with the caller-supplied registers and
memory, exactly as the kernel would jump into mapped code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:
    from repro.alpha.engine import ExecutionEngine

from repro.alpha.isa import Program
from repro.alpha.machine import Machine, MachineResult, Memory
from repro.errors import ValidationError
from repro.logic.formulas import Formula
from repro.pcc.certify import CertificationResult, certify
from repro.pcc.container import PccBinary
from repro.pcc.loader import ExtensionLoader, LoaderStats
from repro.pcc.validate import ValidationReport
from repro.vcgen.policy import SafetyPolicy


@dataclass
class CodeProducer:
    """An untrusted extension writer targeting a published policy."""

    policy: SafetyPolicy

    def build(self, source: str | Program,
              invariants: Mapping[int, Formula] | None = None) -> bytes:
        """Assemble + certify ``source``; returns the PCC binary bytes."""
        return self.certify(source, invariants).binary.to_bytes()

    def certify(self, source: str | Program,
                invariants: Mapping[int, Formula] | None = None,
                ) -> CertificationResult:
        """Like :meth:`build` but returns the full certification record."""
        return certify(source, self.policy, invariants)


@dataclass(frozen=True)
class LoadedExtension:
    """A validated extension, ready for unchecked native execution."""

    program: Program
    report: ValidationReport

    def run(self, memory: Memory,
            registers: Mapping[int, int] | None = None,
            cost_model=None) -> MachineResult:
        """Invoke the extension: full speed, no run-time checks."""
        machine = Machine(self.program, memory,
                          dict(registers or {}), cost_model)
        return machine.run()

    def engine(self, cost_model=None,
               max_steps: int = 1_000_000) -> "ExecutionEngine":
        """A reusable threaded-code engine over the validated program.

        This is the handle the dispatch runtime (:mod:`repro.runtime`)
        keeps per extension: translation is paid once (and shared via
        the engine's global code cache), after which every invocation is
        the bare closure loop with zero checks.
        """
        from repro.alpha.engine import ExecutionEngine

        return ExecutionEngine(self.program, cost_model, max_steps)

    def analyze(self, context=None, cost_model=None):
        """The full static-analysis report for this extension (CFG,
        intervals, WCET, lint) — advisory only; admission already
        happened through validation.  ``context`` is an
        :class:`~repro.analysis.intervals.AnalysisContext`; the default
        assumes the machine's zeroed entry registers and classifies no
        memory regions.
        """
        from repro.analysis.prescreen import analyze_program

        return analyze_program(self.program, context, cost_model)


@dataclass
class CodeConsumer:
    """A kernel/service that accepts PCC binaries under its policy.

    Validation goes through an :class:`ExtensionLoader`, so resubmitting
    byte-identical binaries is O(hash) — the content-addressed cache
    replays the stored verdict (see :mod:`repro.pcc.loader` for why that
    cannot weaken safety).
    """

    policy: SafetyPolicy
    loaded: list[LoadedExtension] = field(default_factory=list)
    cache_capacity: int = 64
    #: Opt-in static-analysis fast-reject before full validation (never
    #: admits anything; see :mod:`repro.analysis.prescreen`).
    prescreen: bool = False
    loader: ExtensionLoader = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.loader = ExtensionLoader(self.policy, self.cache_capacity,
                                      prescreen=self.prescreen)

    def install(self, data: bytes | PccBinary,
                measure_memory: bool = False) -> LoadedExtension:
        """Validate and load an untrusted binary.

        Raises :class:`ValidationError` if the binary does not carry a
        valid proof for this consumer's policy.
        """
        report = self.loader.load(data, measure_memory)
        extension = LoadedExtension(report.program, report)
        self.loaded.append(extension)
        return extension

    def try_install(self, data: bytes | PccBinary
                    ) -> LoadedExtension | None:
        """Like :meth:`install` but returns None instead of raising."""
        try:
            return self.install(data)
        except ValidationError:
            return None

    def install_batch(self, items, processes: int | None = None
                      ) -> list[LoadedExtension | None]:
        """Validate many independent submissions (cache + process pool)
        and load the valid ones; invalid items come back as None without
        disturbing their neighbours."""
        extensions: list[LoadedExtension | None] = []
        for item in self.loader.validate_batch(items, processes):
            if item.ok:
                extension = LoadedExtension(item.report.program,
                                            item.report)
                self.loaded.append(extension)
                extensions.append(extension)
            else:
                extensions.append(None)
        return extensions

    def loader_stats(self) -> LoaderStats:
        """The loader's hit/miss/eviction counters."""
        return self.loader.stats()
