"""The code producer: compilation & certification (paper Figure 1, §2.2).

:func:`certify` takes assembly source (or a parsed program), a safety
policy, and optional loop invariants; it computes the safety predicate,
proves it with the automatic prover, double-checks the proof with the
trusted Delta checker (a free sanity check — the paper's producer has every
incentive to ship only valid proofs), encodes everything in LF, and packs
the PCC binary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.alpha.encoding import encode_program
from repro.alpha.isa import Program
from repro.alpha.parser import parse_program
from repro.errors import CertificationError, PccError
from repro.lf.encode import encode_formula, encode_proof, decode_logic_formula
from repro.logic.formulas import Formula
from repro.pcc.container import PccBinary, pack_invariants, pack_proof
from repro.proof.checker import check_proof
from repro.proof.proofs import Proof
from repro.prover import Prover
from repro.vcgen.policy import SafetyPolicy
from repro.vcgen.vcgen import safety_predicate


@dataclass(frozen=True)
class CertificationResult:
    """Everything the producer learned while certifying, for inspection."""

    binary: PccBinary
    program: Program
    predicate: Formula
    proof: Proof


def canonicalize_invariants(
        invariants: Mapping[int, Formula]) -> dict[int, Formula]:
    """Round-trip invariants through the LF wire encoding.

    Producer and consumer must compute *structurally identical* safety
    predicates, and the wire format canonicalizes bound-variable names; by
    certifying against the round-tripped invariants, the producer proves
    exactly the predicate the consumer will recompute.
    """
    result: dict[int, Formula] = {}
    for pc, formula in invariants.items():
        encoded = encode_formula(formula, {}, 0)
        result[pc] = decode_logic_formula(encoded)
    return result


def certify(source: str | Program, policy: SafetyPolicy,
            invariants: Mapping[int, Formula] | None = None,
            ) -> CertificationResult:
    """Build a PCC binary for ``source`` under ``policy``.

    Raises :class:`CertificationError` if assembly, proving, or encoding
    fails — including the case where the prover is simply not clever
    enough (the paper's "requires intervention from the programmer").
    """
    try:
        if isinstance(source, str):
            program = parse_program(source)
        else:
            program = tuple(source)

        canonical = canonicalize_invariants(invariants or {})
        predicate = safety_predicate(program, policy.precondition,
                                     policy.postcondition, canonical)
        proof = Prover().prove(predicate)
        # The producer checks its own work before shipping.
        check_proof(proof, predicate)

        proof_lf = encode_proof(proof, predicate)
        relocation, proof_bytes = pack_proof(proof_lf)
        invariant_bytes = pack_invariants(
            {pc: encode_formula(formula, {}, 0)
             for pc, formula in canonical.items()})
        binary = PccBinary(
            code=encode_program(program),
            relocation=relocation,
            proof=proof_bytes,
            invariants=invariant_bytes,
        )
        return CertificationResult(binary, program, predicate, proof)
    except CertificationError:
        raise
    except PccError as error:
        raise CertificationError(f"certification failed: {error}") from error
