"""Run-time safety-policy negotiation (paper §4, future work).

"Another possibility is to allow the consumer and producer to 'negotiate'
a safety policy at run time.  This would work by allowing the producer to
send an encoding of a proposed safety policy ... to the consumer.  If the
consumer determines that the proposed policy implies some basic notion of
safety, then it can allow the producer to produce PCC binaries using the
new policy."

The mechanism falls out of the machinery already in place:

* the producer proposes a new *precondition* ``P`` (an encoded formula),
  together with a PCC proof of the implication ``BasePre => P`` — where
  ``BasePre`` is the consumer's own published precondition;
* the consumer validates that implication with the ordinary LF type
  checker.  If it holds, every invocation state the consumer guarantees
  (``BasePre``) also satisfies ``P``, so binaries certified under the
  *proposed* policy are safe to run under the consumer's invocation
  contract;
* thereafter the consumer validates the producer's binaries against the
  proposed policy.

Everything stays proof-checked; the producer never gains authority, only
vocabulary.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import CertificationError, PccError, ValidationError
from repro.lf.binary import deserialize_lf, serialize_lf
from repro.lf.encode import (
    decode_logic_formula,
    encode_formula,
    encode_proof,
)
from repro.lf.signature import SIGNATURE
from repro.lf.syntax import LfApp, LfConst
from repro.lf.typecheck import check_proof_term
from repro.logic.formulas import Formula, Implies
from repro.proof.checker import check_proof
from repro.prover import Prover
from repro.vcgen.policy import SafetyPolicy


@dataclass(frozen=True)
class PolicyProposal:
    """The wire message a producer sends to open a negotiation."""

    precondition_table: bytes
    precondition_stream: bytes
    proof_table: bytes
    proof_stream: bytes

    def to_bytes(self) -> bytes:
        from repro.pcc.container import _read_varint, _varint

        out = bytearray()
        for section in (self.precondition_table, self.precondition_stream,
                        self.proof_table, self.proof_stream):
            out += _varint(len(section))
            out += section
        return bytes(out)

    def digest(self) -> str:
        """Content address of the proposal (sha256 over its sections).

        Mirrors the loader's keying discipline
        (:func:`repro.pcc.loader.policy_fingerprint`): two proposals with
        the same digest carry byte-identical preconditions and proofs, so
        a consumer may cache its accept/reject decision on this key.
        """
        hasher = hashlib.sha256()
        for section in (self.precondition_table, self.precondition_stream,
                        self.proof_table, self.proof_stream):
            hasher.update(len(section).to_bytes(4, "little"))
            hasher.update(section)
        return hasher.hexdigest()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PolicyProposal":
        from repro.pcc.container import _read_varint

        sections = []
        offset = 0
        for __ in range(4):
            length, offset = _read_varint(data, offset)
            if offset + length > len(data):
                raise ValidationError("truncated policy proposal")
            sections.append(data[offset:offset + length])
            offset += length
        if offset != len(data):
            raise ValidationError("trailing bytes in policy proposal")
        return cls(*sections)


def propose_policy(base: SafetyPolicy,
                   proposed_precondition: Formula) -> PolicyProposal:
    """Producer side: prove ``BasePre => P`` and pack the proposal.

    Raises :class:`CertificationError` when the implication is not
    provable — i.e. the proposal asks for more than the consumer's
    invocation contract guarantees.
    """
    implication = Implies(base.precondition, proposed_precondition)
    try:
        proof = Prover().prove(implication)
        check_proof(proof, implication)
    except PccError as error:
        raise CertificationError(
            f"cannot justify proposed policy: {error}") from error
    pre_table, pre_stream = serialize_lf(
        encode_formula(proposed_precondition, {}, 0))
    proof_table, proof_stream = serialize_lf(
        encode_proof(proof, implication))
    return PolicyProposal(pre_table, pre_stream, proof_table, proof_stream)


def accept_policy(base: SafetyPolicy,
                  proposal: PolicyProposal | bytes) -> SafetyPolicy:
    """Consumer side: validate the proposal; returns the negotiated
    policy to validate future binaries against.

    Raises :class:`ValidationError` if the enclosed proof does not
    establish ``BasePre => P`` for the enclosed ``P``.

    The returned policy has a different loader fingerprint than ``base``
    whenever ``P`` differs from ``BasePre`` (the fingerprint covers the
    precondition bytes), so any :class:`repro.pcc.loader.ExtensionLoader`
    cache entries made under the old contract can never satisfy a load
    under the new one.
    """
    if isinstance(proposal, bytes):
        proposal = PolicyProposal.from_bytes(proposal)
    try:
        precondition_lf = deserialize_lf(proposal.precondition_table,
                                         proposal.precondition_stream)
        proposed = decode_logic_formula(precondition_lf)
        proof_term = deserialize_lf(proposal.proof_table,
                                    proposal.proof_stream)
    except PccError as error:
        raise ValidationError(
            f"malformed policy proposal: {error}") from error

    implication = Implies(base.precondition, proposed)
    expected = LfApp(LfConst("pf"), encode_formula(implication, {}, 0))
    try:
        check_proof_term(proof_term, expected, SIGNATURE)
    except PccError as error:
        raise ValidationError(
            f"policy proposal does not imply the base policy's "
            f"guarantees: {error}") from error

    return SafetyPolicy(
        name=f"{base.name}+negotiated",
        precondition=proposed,
        postcondition=base.postcondition,
        # Invocation states still come from the base contract, so the
        # semantic interpretation (used by tests/abstract machine) is
        # inherited unchanged.
        make_checkers=base.make_checkers,
    )
