"""The PCC binary container (paper §2.3, Figure 7).

A PCC binary is a flat byte string with four sections::

    +--------+------------------+------------+---------------------+
    |  code  |    relocation    |   proof    |  invariants (opt.)  |
    +--------+------------------+------------+---------------------+

* **code** — native DEC Alpha machine code, ready to map and execute;
* **relocation** — the symbol table used to reconstruct the LF
  representation at the consumer site (its size grows with the number of
  distinct proof rules used, as the paper observes);
* **proof** — the binary encoding of the LF proof object;
* **invariants** — for programs with loops (§4): "the PCC binary contains
  a table that maps each backward-branch target to a loop invariant",
  each invariant stored as an encoded LF formula.

The header is minimal (magic, version, four section lengths) and the
parser validates every length before slicing, so a malformed container is
rejected, never mis-read.  There is deliberately no checksum or signature:
the whole point of PCC is that integrity is enforced semantically by
revalidating the proof against the code actually received.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.lf.binary import deserialize_lf, serialize_lf
from repro.lf.syntax import LfTerm

_MAGIC = b"PCC1"
_HEADER = struct.Struct("<4sHHIIII")  # magic, version, flags, 4 lengths
VERSION = 1


@dataclass(frozen=True)
class SectionLayout:
    """Byte offsets of each section — the numbers Figure 7 reports."""

    code_start: int
    relocation_start: int
    proof_start: int
    invariants_start: int
    total: int

    def rows(self) -> list[tuple[str, int, int]]:
        """(name, start, end) rows for pretty reports."""
        return [
            ("native code", self.code_start, self.relocation_start),
            ("relocation", self.relocation_start, self.proof_start),
            ("proof", self.proof_start, self.invariants_start),
            ("invariants", self.invariants_start, self.total),
        ]


@dataclass(frozen=True)
class PccBinary:
    """An assembled PCC binary, as produced or as received."""

    code: bytes
    relocation: bytes
    proof: bytes
    invariants: bytes = b""

    def to_bytes(self) -> bytes:
        """Serialize with the Figure 7 section order."""
        header = _HEADER.pack(_MAGIC, VERSION, 0, len(self.code),
                              len(self.relocation), len(self.proof),
                              len(self.invariants))
        return header + self.code + self.relocation + self.proof \
            + self.invariants

    @classmethod
    def from_bytes(cls, data: bytes) -> "PccBinary":
        """Parse an untrusted byte string; raises ValidationError."""
        if len(data) < _HEADER.size:
            raise ValidationError("container shorter than its header")
        magic, version, flags, code_len, reloc_len, proof_len, inv_len = \
            _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise ValidationError("bad magic; not a PCC binary")
        if version != VERSION:
            raise ValidationError(f"unsupported PCC version {version}")
        if flags != 0:
            raise ValidationError(f"unknown container flags {flags:#x}")
        expected = _HEADER.size + code_len + reloc_len + proof_len + inv_len
        if expected != len(data):
            raise ValidationError(
                f"section lengths ({expected} bytes) disagree with "
                f"container size ({len(data)} bytes)")
        offset = _HEADER.size
        code = data[offset:offset + code_len]
        offset += code_len
        relocation = data[offset:offset + reloc_len]
        offset += reloc_len
        proof = data[offset:offset + proof_len]
        offset += proof_len
        invariants = data[offset:offset + inv_len]
        return cls(code, relocation, proof, invariants)

    def layout(self) -> SectionLayout:
        """Byte offsets relative to the start of the code section, matching
        the presentation in Figure 7 (which omits the header)."""
        code_end = len(self.code)
        reloc_end = code_end + len(self.relocation)
        proof_end = reloc_end + len(self.proof)
        total = proof_end + len(self.invariants)
        return SectionLayout(0, code_end, reloc_end, proof_end, total)

    @property
    def size(self) -> int:
        """Total size excluding the fixed header (the paper's metric)."""
        return (len(self.code) + len(self.relocation) + len(self.proof)
                + len(self.invariants))


def pack_proof(term: LfTerm) -> tuple[bytes, bytes]:
    """Encode an LF proof object into (relocation, proof) sections."""
    return serialize_lf(term)


def unpack_proof(relocation: bytes, proof: bytes) -> LfTerm:
    """Decode the proof sections of a received binary (validating)."""
    try:
        return deserialize_lf(relocation, proof)
    except Exception as error:
        raise ValidationError(f"malformed proof section: {error}") from error


def pack_invariants(invariants: dict[int, LfTerm]) -> bytes:
    """Encode the backward-branch-target -> invariant table."""
    out = bytearray()
    out += _varint(len(invariants))
    for pc in sorted(invariants):
        table, stream = serialize_lf(invariants[pc])
        out += _varint(pc)
        out += _varint(len(table))
        out += table
        out += _varint(len(stream))
        out += stream
    return bytes(out)


def unpack_invariants(data: bytes) -> dict[int, LfTerm]:
    """Decode the invariant table of a received binary (validating)."""
    if not data:
        return {}
    try:
        count, offset = _read_varint(data, 0)
        result: dict[int, LfTerm] = {}
        for __ in range(count):
            pc, offset = _read_varint(data, offset)
            table_len, offset = _read_varint(data, offset)
            table = data[offset:offset + table_len]
            if len(table) != table_len:
                raise ValidationError("truncated invariant table")
            offset += table_len
            stream_len, offset = _read_varint(data, offset)
            stream = data[offset:offset + stream_len]
            if len(stream) != stream_len:
                raise ValidationError("truncated invariant stream")
            offset += stream_len
            result[pc] = deserialize_lf(table, stream)
        if offset != len(data):
            raise ValidationError("trailing bytes in invariant section")
        return result
    except ValidationError:
        raise
    except Exception as error:
        raise ValidationError(
            f"malformed invariant section: {error}") from error


def _varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValidationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
