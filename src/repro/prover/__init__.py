"""The automatic theorem prover (certification, paper §2.2).

Given a safety predicate from the VC generator, :class:`~repro.prover.prover.Prover`
searches for a natural-deduction proof over the rule set Delta.  The search
is goal-directed and deterministic: quantifiers and implications are
introduced structurally, hypotheses are decomposed into a fact database,
and atoms are discharged by a handful of strategies (fact lookup modulo
word-equality, universal-fact instantiation, the arithmetic schemas, and a
linear-arithmetic pipeline that bridges machine operators to pure integer
arithmetic).

Like the paper's prover this is a *producer-side, untrusted* component:
everything it emits is re-checked by the trusted checkers.  It is complete
enough to certify every program shipped in this repository fully
automatically — the paper reports the same experience for packet filters.
"""

from repro.prover.prover import Prover, prove_safety_predicate

__all__ = ["Prover", "prove_safety_predicate"]
