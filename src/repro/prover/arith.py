"""Arithmetic helpers for the prover: matching, linear forms, enrichment.

These are *search* utilities — nothing here is trusted.  Every proof step
they suggest is re-validated by the rule functions in
:mod:`repro.proof.rules` before the prover commits to it.
"""

from __future__ import annotations

from repro.logic.formulas import Atom, Formula
from repro.logic.pretty import pp_term
from repro.logic.terms import App, Int, Term, Var, WORD_MOD, all_subterms
from repro.proof.rules import _linear_form  # shared, deliberately

#: Operators whose results always lie in [0, 2^64) (mirror of rules.py).
WORD_VALUED_OPS = frozenset((
    "add64", "sub64", "mul64", "and64", "or64", "xor64", "sll64", "srl64",
    "mod64", "cmpeq", "cmpult", "cmpule", "extbl", "extwl", "extll", "sel",
))


def is_word_valued(term: Term) -> bool:
    """True if ``term`` certainly denotes a value in [0, 2^64)."""
    if isinstance(term, Int):
        return 0 <= term.value < WORD_MOD
    if isinstance(term, App):
        return term.op in WORD_VALUED_OPS
    return False


def match_term(pattern: Term, term: Term,
               wildcards: frozenset[str]) -> dict[str, Term] | None:
    """One-sided syntactic matching: bind ``wildcards`` in ``pattern`` so it
    equals ``term``; None if impossible."""
    binding: dict[str, Term] = {}

    def walk(p: Term, t: Term) -> bool:
        if isinstance(p, Var) and p.name in wildcards:
            if p.name in binding:
                return binding[p.name] == t
            binding[p.name] = t
            return True
        if isinstance(p, Var):
            return p == t
        if isinstance(p, Int):
            return p == t
        if not isinstance(t, App) or t.op != p.op:
            return False
        return all(walk(pa, ta) for pa, ta in zip(p.args, t.args))

    if walk(pattern, term):
        return binding
    return None


def linear_difference(term: Term, base: Term) -> Term | None:
    """A term ``d`` with ``term = base (+) d  (mod 2^64)``, if ``term - base``
    is expressible with unit coefficients; otherwise None.

    Used to guess the instantiation of universally quantified policy facts
    like ``ALL i. ... => rd(r1 (+) i)`` when the goal address is an
    arbitrary machine-arithmetic term.  Sound to guess freely — the
    resulting equality is re-proved by ``norm_mod_eq``.
    """
    form = _linear_form(term, WORD_MOD)
    base_form = _linear_form(base, WORD_MOD)
    diff: dict[Term | None, int] = dict(form)
    for key, coeff in base_form.items():
        diff[key] = (diff.get(key, 0) - coeff) % WORD_MOD
    diff = {key: value % WORD_MOD for key, value in diff.items()}
    diff = {key: value for key, value in diff.items() if value}

    constant = diff.pop(None, 0)
    pieces: list[Term] = []
    for atom, coeff in sorted(diff.items(),
                              key=lambda item: pp_term(item[0])):
        if coeff != 1:
            return None
        pieces.append(atom)
    result: Term | None = None
    for piece in pieces:
        result = piece if result is None else App("add64", (result, piece))
    if constant or result is None:
        const_term = Int(constant)
        result = const_term if result is None else App(
            "add64", (result, const_term))
    return result


def comparison_subterms(formula: Formula | None, *terms: Term) -> set[Term]:
    """All subterms of the given atom arguments — the candidate set for
    bound-lemma enrichment in the linear pipeline."""
    found: set[Term] = set()
    if isinstance(formula, Atom):
        for arg in formula.args:
            found.update(all_subterms(arg))
    for term in terms:
        found.update(all_subterms(term))
    return found


def is_linear_atom(atom: Atom) -> bool:
    """True if the atom can contribute to a linear-arithmetic argument."""
    return atom.pred in ("eq", "ne", "lt", "le", "gt", "ge")
