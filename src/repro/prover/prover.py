"""Goal-directed proof search over the rule set Delta.

The prover maintains a *fact database*: formulas currently known, each
paired with the proof that derives it from the hypotheses in scope.
Implications and quantifiers in the goal are introduced structurally;
hypotheses are decomposed on assumption (conjunctions split, Alpha compare
flags saturated into their arithmetic meaning); atoms are discharged by the
strategies described in each ``_prove_*`` method.

Design constraints worth knowing:

* **Determinism** — certification must be reproducible, so candidate facts
  are tried in sorted pretty-printed order and fresh names come from a
  counter.
* **Every step is validated immediately** — schemas are applied through
  :func:`_apply`, which runs the trusted rule function and proves the
  side obligations recursively; the prover therefore cannot emit a proof
  the checker would reject.
* **Failure is cheap** — strategies raise/return None and the next one
  runs; :class:`repro.errors.ProverError` surfaces only at the top with
  the unprovable subgoal, which in practice points at the offending
  instruction (the paper: the prover "requires intervention from the
  programmer, mainly to learn new axioms about arithmetic").
"""

from __future__ import annotations

import itertools
import sys

# Safety predicates of long programs nest hundreds of connectives; plain
# CPython recursion handles the structural walk, but needs headroom.
if sys.getrecursionlimit() < 20_000:
    sys.setrecursionlimit(20_000)

from repro.errors import ProofError, ProverError
from repro.logic.formulas import (
    And,
    Atom,
    Falsity,
    Forall,
    Formula,
    Implies,
    Or,
    Truth,
    eq,
    formula_vars,
    ge,
    le,
    lt,
)
from repro.logic.pretty import pp_formula, pp_term
from repro.logic.subst import subst_formula
from repro.logic.terms import (
    App,
    Int,
    Term,
    Var,
    WORD_MOD,
    all_subterms,
)
from repro.proof.proofs import Proof
from repro.proof.rules import RULES
from repro.prover.arith import (
    is_linear_atom,
    is_word_valued,
    linear_difference,
    match_term,
)

_MAX_DEPTH = 160
_HOLE = "?hole"

#: Saturation of Alpha compare-flag hypotheses into arithmetic facts:
#: (flag operator, hypothesis predicate) -> rule name.
_FLAG_RULES = {
    ("cmpult", "ne"): "cmpult_true",
    ("cmpult", "eq"): "cmpult_false",
    ("cmpule", "ne"): "cmpule_true",
    ("cmpule", "eq"): "cmpule_false",
    ("cmpeq", "ne"): "cmpeq_true",
    ("cmpeq", "eq"): "cmpeq_false",
}


def _constant_value(term: Term) -> int | None:
    """The constant a word-valued compound term always evaluates to, if
    its linear normal form modulo 2^64 is constant; None otherwise."""
    if not is_word_valued(term):
        return None
    from repro.proof.rules import _linear_form
    form = _linear_form(term, WORD_MOD)
    if not form:
        return 0
    if set(form) == {None}:
        return form[None]
    return None


def _linear_atoms_of(atom: Atom) -> frozenset[Term]:
    """The opaque atoms of the comparison's linear decomposition."""
    from repro.proof.rules import _linear_form
    found: set[Term] = set()
    for arg in atom.args:
        found.update(key for key in _linear_form(arg, None)
                     if key is not None)
    return frozenset(found)


def _connected_premises(goal: Atom,
                        candidates: dict[Atom, "Proof"],
                        ) -> dict[Atom, "Proof"]:
    """Premises transitively connected to the goal via shared linear atoms.

    Unconnected facts cannot participate in a Fourier-Motzkin refutation of
    the goal's negation (they only combine with each other), so dropping
    them is complete — and essential for performance.
    """
    reachable = set(_linear_atoms_of(goal))
    remaining = {atom: _linear_atoms_of(atom) for atom in candidates}
    selected: dict[Atom, Proof] = {}
    changed = True
    while changed:
        changed = False
        for atom in list(remaining):
            atoms = remaining[atom]
            if not atoms or atoms & reachable:
                selected[atom] = candidates[atom]
                reachable |= atoms
                del remaining[atom]
                changed = True
    return selected


def _collect_subterms(atoms, into: set) -> None:
    """All subterms of the atoms' arguments, DAG-aware (shared sel-terms
    are enormous; walking them as trees dominated certification)."""
    seen: set[int] = set()
    stack = []
    for atom in atoms:
        stack.extend(atom.args)
    while stack:
        term = stack.pop()
        if id(term) in seen:
            continue
        seen.add(id(term))
        into.add(term)
        if isinstance(term, App):
            stack.extend(term.args)


def _hyp_labels(proof: Proof) -> frozenset:
    """All hypothesis labels a proof references (shared nodes once)."""
    labels: set[str] = set()
    seen: set[int] = set()
    stack = [proof]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node.rule == "hyp":
            labels.add(node.params[0])
        stack.extend(node.premises)
    return frozenset(labels)


def _replace_term(term: Term, old: Term, new: Term) -> Term:
    """Replace every occurrence of ``old`` in ``term`` by ``new``."""
    if term == old:
        return new
    if isinstance(term, App):
        args = tuple(_replace_term(arg, old, new) for arg in term.args)
        if args != term.args:
            return App(term.op, args)
    return term


class Prover:
    """A fresh prover instance per safety predicate (it carries state)."""

    def __init__(self) -> None:
        self.facts: dict[Formula, Proof] = {}
        self.mod_ids: dict[str, Proof] = {}
        self._labels = itertools.count()
        self._eigens = itertools.count()
        self._fail_cache: set[Formula] = set()
        self._exact_in_progress: set[Term] = set()
        self._flipping = False
        self._sorted_cache: list[Formula] | None = None
        self._contra_cache: bool | None = None
        self._hyp_formulas: dict[str, Formula] = {}
        # goal -> (proof, referenced hypothesis labels).  Never rolled
        # back: an entry is reusable in any scope that still has all the
        # referenced hypotheses (adding hypotheses cannot invalidate a
        # proof, and labels are globally unique).
        self._success_cache: dict[Formula, tuple[Proof, frozenset]] = {}

    # -- public entry ------------------------------------------------------

    def prove(self, goal: Formula) -> Proof:
        """Prove ``goal`` from the current fact database."""
        proof = self._prove(goal, 0)
        if proof is None:
            raise ProverError(f"cannot prove: {pp_formula(goal)}")
        return proof

    # -- context management -------------------------------------------------

    def _snapshot(self) -> tuple:
        return (dict(self.facts), dict(self.mod_ids),
                set(self._fail_cache), dict(self._hyp_formulas))

    def _restore(self, snapshot: tuple) -> None:
        (self.facts, self.mod_ids, self._fail_cache,
         self._hyp_formulas) = snapshot
        self._sorted_cache = None
        self._contra_cache = None

    def _assume(self, formula: Formula, proof: Proof) -> None:
        """Decompose and record a hypothesis."""
        self._fail_cache.clear()
        self._sorted_cache = None
        self._contra_cache = None
        if isinstance(formula, And):
            self._assume(formula.left,
                         Proof("andel", (formula.right,), (proof,)))
            self._assume(formula.right,
                         Proof("ander", (formula.left,), (proof,)))
            return
        if isinstance(formula, Truth):
            return
        self.facts[formula] = proof
        if isinstance(formula, Atom):
            self._saturate_atom(formula, proof)

    def _saturate_atom(self, atom: Atom, proof: Proof) -> None:
        # Register word-identity facts:  r mod 2^64 = r.
        if (atom.pred == "eq" and isinstance(atom.args[1], Var)
                and atom.args[0] == App("mod64", (atom.args[1],))):
            self.mod_ids[atom.args[1].name] = proof
        # Saturate compare-flag facts into their arithmetic meaning.
        if (atom.pred in ("eq", "ne") and atom.args[1] == Int(0)
                and isinstance(atom.args[0], App)):
            flag = atom.args[0]
            rule = _FLAG_RULES.get((flag.op, atom.pred))
            if rule is not None:
                a, b = flag.args
                conclusion = self._flag_conclusion(rule, a, b)
                derived = Proof(rule, (a, b), (proof,))
                self.facts.setdefault(conclusion, derived)

    @staticmethod
    def _flag_conclusion(rule: str, a: Term, b: Term) -> Atom:
        pred = {"cmpult_true": "lt", "cmpult_false": "ge",
                "cmpule_true": "le", "cmpule_false": "gt",
                "cmpeq_true": "eq", "cmpeq_false": "ne"}[rule]
        return Atom(pred, (App("mod64", (a,)), App("mod64", (b,))))

    # -- schema application --------------------------------------------------

    def _apply(self, rule: str, goal: Formula, params: tuple,
               depth: int) -> Proof | None:
        """Apply a rule whose premises the prover must itself prove.

        Runs the trusted rule function to get the premise obligations, then
        proves each recursively.  Returns None (never raises) on failure.
        """
        if depth > _MAX_DEPTH:
            return None
        try:
            obligations = RULES[rule](goal, params, self.facts)
        except ProofError:
            return None
        premises = []
        for subgoal, extra in obligations:
            if extra:
                return None  # schemas never introduce hypotheses
            premise = self._prove(subgoal, depth + 1)
            if premise is None:
                return None
            premises.append(premise)
        return Proof(rule, params, tuple(premises))

    # -- the main dispatcher --------------------------------------------------

    def _prove(self, goal: Formula, depth: int) -> Proof | None:
        if depth > _MAX_DEPTH or goal in self._fail_cache:
            return None

        falsity_proof = self.facts.get(Falsity())
        if falsity_proof is not None and not isinstance(goal, Truth):
            return Proof("falsee", (), (falsity_proof,))

        cached = self._success_cache.get(goal)
        if cached is not None:
            proof, labels = cached
            if all(label in self._hyp_formulas for label in labels):
                return proof

        proof = self._prove_structural(goal, depth)
        if proof is None:
            proof = self._prove_by_cases(goal, depth)
        if proof is None:
            self._fail_cache.add(goal)
        else:
            self._success_cache[goal] = (proof, _hyp_labels(proof))
        return proof

    def _prove_structural(self, goal: Formula, depth: int) -> Proof | None:
        # Structural descent does not consume search budget: connective
        # recursion always shrinks the goal, so only the atom strategies
        # (which genuinely search) count against _MAX_DEPTH.
        if isinstance(goal, Truth):
            return Proof("truei")
        if isinstance(goal, And):
            left = self._prove(goal.left, depth)
            if left is None:
                return None
            right = self._prove(goal.right, depth)
            if right is None:
                return None
            return Proof("andi", (), (left, right))
        if isinstance(goal, Implies):
            label = f"h{next(self._labels)}"
            snapshot = self._snapshot()
            try:
                self._hyp_formulas[label] = goal.left
                self._assume(goal.left, Proof("hyp", (label,)))
                body = self._prove(goal.right, depth)
            finally:
                self._restore(snapshot)
            if body is None:
                return None
            return Proof("impi", (label,), (body,))
        if isinstance(goal, Forall):
            eigen = self._fresh_eigen(goal)
            body = subst_formula(goal.body, {goal.var: Var(eigen)})
            inner = self._prove(body, depth)
            if inner is None:
                return None
            return Proof("alli", (eigen,), (inner,))
        if isinstance(goal, Or):
            boolean = self._apply("cmp_bool", goal, (), depth)
            if boolean is not None:
                return boolean
            left = self._prove(goal.left, depth + 1)
            if left is not None:
                return Proof("ori1", (), (left,))
            right = self._prove(goal.right, depth + 1)
            if right is not None:
                return Proof("ori2", (), (right,))
            return None
        if isinstance(goal, Atom):
            return self._prove_atom(goal, depth)
        return None

    def _fresh_eigen(self, goal: Forall) -> str:
        """The binder's own name when no hypotheses are in scope (this
        keeps top-level safety-predicate proofs readable); otherwise a
        counter-fresh name, which is collision-free by construction and
        avoids scanning every fact's free variables."""
        if not self.facts and goal.var not in formula_vars(goal):
            return goal.var
        return f"{goal.var}${next(self._eigens)}"

    def _prove_by_cases(self, goal: Formula, depth: int) -> Proof | None:
        """Last resort: eliminate an available disjunction (from BGT/BLE
        branch hypotheses)."""
        if depth > _MAX_DEPTH - 5:
            return None
        for fact in self._sorted_facts():
            if not isinstance(fact, Or):
                continue
            or_proof = self.facts[fact]
            branches = []
            failed = False
            for branch in (fact.left, fact.right):
                label = f"h{next(self._labels)}"
                snapshot = self._snapshot()
                try:
                    del self.facts[fact]  # do not re-split the same Or
                    self._sorted_cache = None
                    self._contra_cache = None
                    self._hyp_formulas[label] = branch
                    self._assume(branch, Proof("hyp", (label,)))
                    sub = self._prove(goal, depth + 2)
                finally:
                    self._restore(snapshot)
                if sub is None:
                    failed = True
                    break
                branches.append(Proof("impi", (label,), (sub,)))
            if not failed:
                return Proof("ore", (fact.left, fact.right),
                             (or_proof, branches[0], branches[1]))
        return None

    def _sorted_facts(self) -> list[Formula]:
        """Deterministic fact ordering; cached because atom strategies
        iterate it constantly and pretty-printing large facts is dear."""
        if self._sorted_cache is not None:
            return self._sorted_cache
        ordered = sorted(self.facts, key=pp_formula)
        self._sorted_cache = ordered
        return ordered

    # -- atoms -----------------------------------------------------------------

    def _prove_atom(self, goal: Atom, depth: int) -> Proof | None:
        direct = self.facts.get(goal)
        if direct is not None:
            return direct
        ground = self._apply("arith_eval", goal, (), depth)
        if ground is not None:
            return ground
        folded = self._prove_via_constant_folding(goal, depth)
        if folded is not None:
            return folded
        if goal.pred == "eq":
            proof = self._prove_word_eq(goal.args[0], goal.args[1], depth)
            if proof is not None:
                return proof
        if goal.pred in ("rd", "wr"):
            proof = self._prove_safety_atom(goal, depth)
            if proof is not None:
                return proof
        if is_linear_atom(goal):
            proof = self._prove_linear(goal, depth)
            if proof is not None:
                return proof
        proof = self._prove_congruent_fact(goal, depth)
        if proof is not None:
            return proof
        proof = self._prove_from_implications(goal, depth)
        if proof is not None:
            return proof
        # Universal facts conclude more than rd/wr: the packet policy's
        # no-alias conjunct ends in a ne atom, for example.
        if depth <= _MAX_DEPTH - 10:
            for fact in self._sorted_facts():
                if isinstance(fact, Forall):
                    proof = self._instantiate_universal(fact, goal, depth)
                    if proof is not None:
                        return proof
        return None

    # -- constant folding inside goals -------------------------------------------

    def _prove_via_constant_folding(self, goal: Atom,
                                    depth: int) -> Proof | None:
        """If the goal contains a compound subterm whose value is a
        constant (zero-register idioms like ``sub64(r, r)``, or masks built
        with LDA chains), rewrite it to the literal and prove the folded
        goal.  This keeps every literal-checking schema applicable to
        hand-scheduled code."""
        if depth > _MAX_DEPTH - 10:
            return None
        target = None
        value = 0
        for arg in goal.args:
            for sub in all_subterms(arg):
                if not isinstance(sub, App) or sub.op in ("sel", "upd"):
                    continue
                constant = _constant_value(sub)
                if constant is not None:
                    target = sub
                    value = constant
                    break
            if target is not None:
                break
        if target is None:
            return None
        literal = Int(value)
        eq_proof = self._prove_word_eq(target, literal, depth + 1)
        if eq_proof is None:
            return None
        folded = Atom(goal.pred,
                      tuple(_replace_term(arg, target, literal)
                            for arg in goal.args))
        inner = self._prove(folded, depth + 1)
        if inner is None:
            return None
        template = Atom(goal.pred,
                        tuple(_replace_term(arg, target, Var(_HOLE))
                              for arg in goal.args))
        return Proof("eqsub", (template, _HOLE, literal, target),
                     (Proof("eqsym", (), (eq_proof,)), inner))

    # -- equality ---------------------------------------------------------------

    def _prove_word_eq(self, left: Term, right: Term,
                       depth: int) -> Proof | None:
        """Prove ``left = right``."""
        if depth > _MAX_DEPTH:
            return None
        goal = eq(left, right)
        if goal in self._fail_cache:
            return None
        if left == right:
            return Proof("eqrefl")
        fact = self.facts.get(goal)
        if fact is not None:
            return fact
        reverse = self.facts.get(eq(right, left))
        if reverse is not None:
            return Proof("eqsym", (), (reverse,))

        proof = self._apply("arith_eval", goal, (), depth)
        if proof is not None:
            return proof

        # t mod 2^64 = t  (either orientation).
        proof = self._apply("mod_word", goal, (), depth)
        if proof is not None:
            return proof
        if isinstance(right, App) and right.op == "mod64":
            inner = self._apply("mod_word", eq(right, left), (), depth)
            if inner is not None:
                return Proof("eqsym", (), (inner,))

        # The mod-equality chain:
        #   t = (t mod) = (s mod) = s.
        proof = self._mod_chain(left, right, depth)
        if proof is not None:
            return proof

        # Shape-directed schemas.
        for rule in ("and_mask_disjoint", "add_align", "sll_align",
                     "add64_exact", "sub64_exact", "or_disjoint",
                     "sel_upd_same", "sel_upd_other"):
            proof = self._apply(rule, goal, (), depth)
            if proof is not None:
                return proof

        # a & c2 = 0 from a known wider-mask fact  (a & c1 = 0, c2 <= c1).
        if (isinstance(left, App) and left.op == "and64"
                and right == Int(0)):
            operand = left.args[0]
            for fact in self._sorted_facts():
                if not (isinstance(fact, Atom) and fact.pred == "eq"):
                    continue
                fact_left, fact_right = fact.args
                if fact_right != Int(0):
                    continue
                if not (isinstance(fact_left, App)
                        and fact_left.op == "and64"
                        and fact_left.args[0] == operand):
                    continue
                proof = self._apply("and_submask", goal,
                                    (fact_left.args[1],), depth)
                if proof is not None:
                    return proof

        # Reads through memory updates: rewrite sel(upd(m, a, v), b) to
        # its value (same cell) or the underlying read (other cell), then
        # chain to the right-hand side.
        proof = self._sel_upd_chain(left, right, depth)
        if proof is not None:
            return proof

        # Congruence: same operator, equal arguments.
        proof = self._congruent_app_eq(left, right, depth)
        if proof is not None:
            return proof

        # Orientation: retry the schemas on the flipped goal.
        if not getattr(self, "_flipping", False):
            self._flipping = True
            try:
                flipped = self._prove_word_eq(right, left, depth + 1)
            finally:
                self._flipping = False
            if flipped is not None:
                return Proof("eqsym", (), (flipped,))
        self._fail_cache.add(goal)
        return None

    def _mod_id(self, term: Term, depth: int) -> Proof | None:
        """A proof of ``term mod 2^64 = term``, if the term is known to be
        word-valued (structurally, or by hypothesis for registers)."""
        if isinstance(term, Var):
            return self.mod_ids.get(term.name)
        goal = eq(App("mod64", (term,)), term)
        fact = self.facts.get(goal)
        if fact is not None:
            return fact
        if is_word_valued(term):
            return self._apply("mod_word", goal, (), depth)
        return None

    def _mod_chain(self, left: Term, right: Term,
                   depth: int) -> Proof | None:
        left_mod = App("mod64", (left,))
        right_mod = App("mod64", (right,))
        middle = self._apply("norm_mod_eq", eq(left_mod, right_mod), (),
                             depth)
        if middle is None:
            return None
        left_id = self._mod_id(left, depth)
        right_id = self._mod_id(right, depth)
        if left_id is None or right_id is None:
            return None
        # left = mod(left)      (eqsym of left_id)
        # mod(left) = right     (eqtrans via mod(right))
        upper = Proof("eqtrans", (right_mod,), (middle, right_id))
        return Proof("eqtrans", (left_mod,),
                     (Proof("eqsym", (), (left_id,)), upper))

    def _sel_upd_chain(self, left: Term, right: Term,
                       depth: int) -> Proof | None:
        if not (isinstance(left, App) and left.op == "sel"):
            return None
        updated, read_addr = left.args
        if not (isinstance(updated, App) and updated.op == "upd"):
            return None
        base, __, value = updated.args
        for rule, middle in (
                ("sel_upd_same", App("mod64", (value,))),
                ("sel_upd_other", App("sel", (base, read_addr)))):
            if middle == right:
                continue  # the direct schema attempt already ran
            step = self._apply(rule, eq(left, middle), (), depth)
            if step is None:
                continue
            rest = self._prove_word_eq(middle, right, depth + 1)
            if rest is not None:
                return Proof("eqtrans", (middle,), (step, rest))
        return None

    def _congruent_app_eq(self, left: Term, right: Term,
                          depth: int) -> Proof | None:
        if not (isinstance(left, App) and isinstance(right, App)):
            return None
        if left.op != right.op or len(left.args) != len(right.args):
            return None
        current = left
        proof = Proof("eqrefl")
        goal_so_far = eq(left, left)
        for position in range(len(left.args)):
            a = current.args[position]
            b = right.args[position]
            if a == b:
                continue
            arg_eq = self._prove_word_eq(a, b, depth + 1)
            if arg_eq is None:
                return None
            hole_args = list(current.args)
            hole_args[position] = Var(_HOLE)
            template = eq(left, App(left.op, tuple(hole_args)))
            new_args = list(current.args)
            new_args[position] = b
            current = App(left.op, tuple(new_args))
            proof = Proof("eqsub", (template, _HOLE, a, b),
                          (arg_eq, proof))
            goal_so_far = eq(left, current)
        if current != right:
            return None
        return proof

    # -- rd/wr ---------------------------------------------------------------

    def _prove_safety_atom(self, goal: Atom, depth: int) -> Proof | None:
        address = goal.args[0]
        # 0. SFI-style sandboxed addresses: rewrite (x & c) | b into
        #    (x & c) (+) b so the additive policy facts apply.
        if isinstance(address, App) and address.op == "or64":
            added = App("add64", address.args)
            disjoint = self._apply("or_disjoint", eq(address, added), (),
                                   depth)
            if disjoint is not None:
                inner = self._prove(Atom(goal.pred, (added,)), depth + 1)
                if inner is not None:
                    template = Atom(goal.pred, (Var(_HOLE),))
                    return Proof(
                        "eqsub", (template, _HOLE, added, address),
                        (Proof("eqsym", (), (disjoint,)), inner))
        # 1. A matching fact, possibly modulo word equality.
        for fact in self._sorted_facts():
            if isinstance(fact, Atom) and fact.pred == goal.pred:
                if fact == goal:
                    return self.facts[fact]
                rewritten = self._rewrite_atom(fact, self.facts[fact], goal,
                                               depth)
                if rewritten is not None:
                    return rewritten
        # 2. Implication facts concluding a congruent rd/wr atom.
        proof = self._prove_from_implications(goal, depth)
        if proof is not None:
            return proof
        # 3. Universal policy facts.
        for fact in self._sorted_facts():
            if isinstance(fact, Forall):
                proof = self._instantiate_universal(fact, goal, depth)
                if proof is not None:
                    return proof
        return None

    def _rewrite_atom(self, fact: Atom, fact_proof: Proof, goal: Atom,
                      depth: int) -> Proof | None:
        """Turn a proof of ``fact`` into a proof of ``goal`` by rewriting
        each differing argument with a word-equality."""
        if fact.pred != goal.pred or len(fact.args) != len(goal.args):
            return None
        current_args = list(fact.args)
        proof = fact_proof
        for position in range(len(goal.args)):
            a = current_args[position]
            b = goal.args[position]
            if a == b:
                continue
            arg_eq = self._prove_word_eq(a, b, depth + 1)
            if arg_eq is None:
                return None
            hole_args = list(current_args)
            hole_args[position] = Var(_HOLE)
            template = Atom(goal.pred, tuple(hole_args))
            proof = Proof("eqsub", (template, _HOLE, a, b),
                          (arg_eq, proof))
            current_args[position] = b
        return proof

    def _prove_congruent_fact(self, goal: Atom, depth: int) -> Proof | None:
        for fact in self._sorted_facts():
            if isinstance(fact, Atom) and fact.pred == goal.pred:
                proof = self._rewrite_atom(fact, self.facts[fact], goal,
                                           depth)
                if proof is not None:
                    return proof
        return None

    def _prove_from_implications(self, goal: Atom,
                                 depth: int) -> Proof | None:
        if depth > _MAX_DEPTH - 5:
            return None
        for fact in self._sorted_facts():
            if not isinstance(fact, Implies):
                continue
            conclusion = fact.right
            if not (isinstance(conclusion, Atom)
                    and conclusion.pred == goal.pred):
                continue
            antecedent_proof = self._prove(fact.left, depth + 2)
            if antecedent_proof is None:
                continue
            concluded = Proof("impe", (fact.left,),
                              (self.facts[fact], antecedent_proof))
            if conclusion == goal:
                return concluded
            rewritten = self._rewrite_atom(conclusion, concluded, goal,
                                           depth)
            if rewritten is not None:
                return rewritten
        return None

    def _instantiate_universal(self, fact: Forall, goal: Atom,
                               depth: int) -> Proof | None:
        """Instantiate ``ALL x1..xn. A => C`` so that C proves ``goal``.

        Single-binder facts get the full candidate machinery (syntactic
        match plus the linear-difference guess); multi-binder facts (the
        packet policy's no-alias conjunct) use pure syntactic matching of
        the conclusion against the goal.
        """
        binders: list[str] = []
        body: Formula = fact
        while isinstance(body, Forall):
            binders.append(body.var)
            body = body.body
        if not isinstance(body, Implies):
            return None
        conclusion = body.right
        if not (isinstance(conclusion, Atom)
                and conclusion.pred == goal.pred
                and len(conclusion.args) == len(goal.args)):
            return None

        if len(binders) == 1:
            assignments = [{binders[0]: candidate}
                           for candidate in self._candidates(
                               binders[0], conclusion, goal)]
        else:
            binding = self._match_atom(conclusion, goal,
                                       frozenset(binders))
            if binding is None or set(binding) != set(binders):
                return None
            assignments = [binding]

        for assignment in assignments:
            instantiated = subst_formula(body, assignment)
            assert isinstance(instantiated, Implies)
            antecedent_proof = self._prove(instantiated.left, depth + 2)
            if antecedent_proof is None:
                continue
            # Peel the binders with alle, one at a time.
            source: Formula = fact
            concluded = self.facts[fact]
            for index, name in enumerate(binders):
                assert isinstance(source, Forall)
                witness = assignment[name]
                concluded = Proof("alle", (source, witness), (concluded,))
                source = subst_formula(source.body, {name: witness})
            concluded = Proof("impe", (instantiated.left,),
                              (concluded, antecedent_proof))
            new_conclusion = instantiated.right
            assert isinstance(new_conclusion, Atom)
            if new_conclusion == goal:
                return concluded
            rewritten = self._rewrite_atom(new_conclusion, concluded, goal,
                                           depth)
            if rewritten is not None:
                return rewritten
        return None

    @staticmethod
    def _match_atom(pattern: Atom, goal: Atom,
                    wildcards: frozenset) -> dict[str, Term] | None:
        binding: dict[str, Term] = {}
        for p_arg, g_arg in zip(pattern.args, goal.args):
            partial = match_term(p_arg, g_arg, wildcards)
            if partial is None:
                return None
            for name, value in partial.items():
                if binding.get(name, value) != value:
                    return None
                binding[name] = value
        return binding

    def _candidates(self, var: str, pattern: Atom,
                    goal: Atom) -> list[Term]:
        """Instantiation candidates for a universal fact."""
        found: list[Term] = []
        binding = None
        for p_arg, g_arg in zip(pattern.args, goal.args):
            binding = match_term(p_arg, g_arg, frozenset((var,)))
            if binding and var in binding:
                found.append(binding[var])
                break
        # Linear guess: pattern address is base (+) i.
        address = pattern.args[0]
        if (isinstance(address, App) and address.op == "add64"
                and address.args[1] == Var(var)):
            guess = linear_difference(goal.args[0], address.args[0])
            if guess is not None and guess not in found:
                found.append(guess)
        if Var(var) == address:
            if goal.args[0] not in found:
                found.append(goal.args[0])
        return found

    # -- linear arithmetic ------------------------------------------------------

    def _prove_linear(self, goal: Atom, depth: int) -> Proof | None:
        """The linear pipeline: gather comparison facts, enrich with bound
        lemmas and machine-to-pure equalities, hand everything to the
        ``linarith`` schema."""
        if depth > _MAX_DEPTH - 10:
            return None
        candidates: dict[Atom, Proof] = {}

        for fact in self.facts:
            if (isinstance(fact, Atom) and is_linear_atom(fact)
                    and fact.pred != "ne"):
                candidates[fact] = self.facts[fact]

        # Keep only premises transitively sharing a linear atom with the
        # goal: Fourier-Motzkin on everything in scope is what makes naive
        # certification exponential on branchy compiled code.
        premises = _connected_premises(goal, candidates)

        terms: set[Term] = set()
        _collect_subterms(list(premises) + [goal], terms)

        for term in sorted(terms, key=pp_term):
            self._enrich(term, premises, depth)

        ordered = sorted(premises, key=pp_formula)
        try:
            RULES["linarith"](goal, tuple(ordered), self.facts)
        except ProofError:
            pass
        else:
            ordered = self._minimize_premises(goal, ordered)
            return Proof("linarith", tuple(ordered),
                         tuple(premises[atom] for atom in ordered))

        # Fallback for dead branches: contradictory hypotheses prove any
        # comparison, even one unconnected to them.
        if self._facts_contradictory(candidates):
            ordered = sorted(candidates, key=pp_formula)
            try:
                RULES["linarith"](goal, tuple(ordered), self.facts)
            except ProofError:
                return None
            ordered = self._minimize_premises(goal, ordered)
            return Proof("linarith", tuple(ordered),
                         tuple(candidates[atom] for atom in ordered))
        return None

    @staticmethod
    def _minimize_premises(goal: Atom,
                           premises: list[Atom]) -> list[Atom]:
        """Keep only the premises in the Fourier-Motzkin unsat core — a
        proof-size optimization (the paper: "we have implemented several
        optimizations in the representation of the proofs").  Provenance
        tags in the elimination give the core in a single FM pass."""
        from repro.proof.rules import _constraints_of, _fm_core

        constraints: list[dict] = []
        tags: list[frozenset] = []
        for index, premise in enumerate(premises):
            if premise.pred == "ne":
                continue
            for constraint in _constraints_of(premise, negate=False)[0]:
                constraints.append(constraint)
                tags.append(frozenset((index,)))
        needed: set[int] = set()
        try:
            for branch in _constraints_of(goal, negate=True):
                branch_constraints = constraints + branch
                branch_tags = tags + [frozenset()] * len(branch)
                core = _fm_core(branch_constraints, branch_tags)
                if core is None:
                    return premises
                needed |= core
        except ProofError:
            return premises
        kept = [premise for index, premise in enumerate(premises)
                if index in needed]
        try:
            RULES["linarith"](goal, tuple(kept), {})
        except ProofError:
            return premises  # fall back to the full (accepted) set
        return kept

    def _facts_contradictory(self, candidates: dict[Atom, Proof]) -> bool:
        """True when the linear facts in scope are jointly infeasible (a
        dead branch).  Cached per scope change."""
        if self._contra_cache is not None:
            return self._contra_cache
        from repro.proof.rules import _constraints_of, _fm_infeasible
        constraints = []
        for atom in candidates:
            if atom.pred == "ne":
                continue
            constraints.extend(_constraints_of(atom, negate=False)[0])
        try:
            result = _fm_infeasible(constraints)
        except ProofError:
            result = False
        self._contra_cache = result
        return result

    def _enrich(self, term: Term, premises: dict[Atom, Proof],
                depth: int) -> None:
        """Add bound lemmas and exactness equalities for one subterm."""
        if not isinstance(term, App):
            return

        def try_add(rule: str, atom: Atom, params: tuple = ()) -> None:
            if atom in premises:
                return
            proof = self._apply(rule, atom, params, depth + 1)
            if proof is not None:
                premises[atom] = proof

        if is_word_valued(term):
            try_add("word_ge0", ge(term, 0))
            # Ground constant-valued compounds (zero-register idioms,
            # LDA-built constants) so linear reasoning sees the number.
            constant = _constant_value(term)
            if constant is not None:
                grounded = eq(term, Int(constant))
                if grounded not in premises:
                    proof = self._prove_word_eq(term, Int(constant),
                                                depth + 1)
                    if proof is not None:
                        premises[grounded] = proof
        if term.op == "and64" and isinstance(term.args[1], Int):
            try_add("and_ubound", le(term, term.args[1]))
        if term.op == "srl64" and isinstance(term.args[1], Int):
            shift = term.args[1].value & 63
            try_add("srl_bound", lt(term, Int(1 << (64 - shift))))
        if term.op in ("extbl", "extwl", "extll"):
            bound = {"extbl": 1 << 8, "extwl": 1 << 16,
                     "extll": 1 << 32}[term.op]
            try_add("ext_bound", lt(term, bound))
        if term.op in ("mod64", "sel"):
            try_add("word_lt_mod", lt(term, Int(WORD_MOD)))
        if term.op == "mod64":
            identity = self._mod_id(term.args[0], depth + 1)
            if identity is not None:
                premises.setdefault(eq(term, term.args[0]), identity)
        if term.op == "sll64":
            a, k = term.args
            # (a << k) <= m << k when a is a masked value:  a = x & m.
            if (isinstance(a, App) and a.op == "and64"
                    and isinstance(a.args[1], Int) and isinstance(k, Int)):
                mask = a.args[1].value
                shifted = mask << (k.value & 63)
                if 0 <= shifted < WORD_MOD:
                    try_add("sll_ubound", le(term, Int(shifted)),
                            (a.args[1],))
            # ((a >> k) << k) <= a mod 2^64
            if isinstance(a, App) and a.op == "srl64" and a.args[1] == k:
                inner = a.args[0]
                bound = le(term, App("mod64", (inner,)))
                try_add("shift_trunc_le", bound)
                identity = self._mod_id(inner, depth + 1)
                if identity is not None:
                    premises.setdefault(
                        eq(App("mod64", (inner,)), inner), identity)
            # (a << k) < b mod 2^64  from  a mod < (b >> k) mod
            for fact in list(self.facts):
                if not (isinstance(fact, Atom) and fact.pred == "lt"):
                    continue
                lhs, rhs = fact.args
                if lhs != App("mod64", (a,)):
                    continue
                if not (isinstance(rhs, App) and rhs.op == "mod64"):
                    continue
                shifted = rhs.args[0]
                if not (isinstance(shifted, App) and shifted.op == "srl64"
                        and shifted.args[1] == k):
                    continue
                b = shifted.args[0]
                bound = lt(term, App("mod64", (b,)))
                try_add("sll_lt_of_srl", bound, (b,))
                identity = self._mod_id(b, depth + 1)
                if identity is not None:
                    premises.setdefault(eq(App("mod64", (b,)), b),
                                        identity)
        if term.op == "add64":
            a, b = term.args
            exact = eq(term, App("add", (a, b)))
            if exact not in premises:
                proof = self._prove_add64_exact(term, premises, depth)
                if proof is not None:
                    premises[exact] = proof
        if term.op == "sub64":
            exact = eq(term, App("sub", term.args))
            if exact not in premises:
                proof = self._apply("sub64_exact", exact, (), depth + 1)
                if proof is not None:
                    premises[exact] = proof

    def _prove_add64_exact(self, term: App, premises: dict[Atom, Proof],
                           depth: int) -> Proof | None:
        """``a (+) b = a + b`` needs ``a + b < 2^64``; prove it with the
        premises gathered *so far* (bounds of a and b were enriched first
        because subterms sort shorter)."""
        if term in self._exact_in_progress:
            return None
        self._exact_in_progress.add(term)
        try:
            return self._prove_add64_exact_inner(term, premises, depth)
        finally:
            self._exact_in_progress.discard(term)

    def _prove_add64_exact_inner(self, term: App,
                                 premises: dict[Atom, Proof],
                                 depth: int) -> Proof | None:
        a, b = term.args
        goal = eq(term, App("add", (a, b)))
        try:
            obligations = RULES["add64_exact"](goal, (), self.facts)
        except ProofError:
            return None
        sub_proofs = []
        for subgoal, __ in obligations:
            assert isinstance(subgoal, Atom)
            proof = self._prove(subgoal, depth + 2)
            if proof is None:
                proof = self._linarith_from(subgoal, premises)
            if proof is None:
                return None
            sub_proofs.append(proof)
        return Proof("add64_exact", (), tuple(sub_proofs))

    def _linarith_from(self, goal: Atom,
                       premises: dict[Atom, Proof]) -> Proof | None:
        ordered = sorted(premises, key=pp_formula)
        try:
            RULES["linarith"](goal, tuple(ordered), self.facts)
        except ProofError:
            return None
        ordered = self._minimize_premises(goal, ordered)
        return Proof("linarith", tuple(ordered),
                     tuple(premises[atom] for atom in ordered))


def prove_safety_predicate(predicate: Formula) -> Proof:
    """Certify a safety predicate: the producer-side proof generation step.

    Raises :class:`ProverError` when the (incomplete, deterministic) search
    fails; the message names the first unprovable subgoal.
    """
    return Prover().prove(predicate)
