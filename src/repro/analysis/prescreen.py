"""The loader's sound fast-reject path, plus the bundled full report.

:func:`prescreen_blob` answers one question about an untrusted PCC
binary *without* touching the prover: "is this binary certain to fail
full validation (or certain to fault at run time)?"  It may answer
"no opinion" freely — **only full PCC validation ever admits** — but
when it answers "reject", that answer must be one validation itself
would reach, so a pre-screened loader rejects a subset of what an
unscreened loader rejects and never turns away a certifiable binary.

The reject conditions, cheapest first:

1. **container** — the Figure 7 framing does not parse (validation's
   step 1 fails identically);
2. **code** — the code section does not decode to the Alpha subset
   (validation's ``decode_program`` fails identically);
3. **structure** — :func:`repro.alpha.isa.validate_program` rejects
   (out-of-range branch target, fall-off-the-end); ``safety_predicate``
   calls the very same function, so validation rejects identically;
4. **invariants** — the invariant table is malformed, annotates a pc
   outside the program, or misses a backward-branch target; these
   mirror ``unpack_invariants`` and ``check_invariant_coverage``
   one-for-one;
5. **memory** — the interval analysis proves some reachable LDQ/STQ
   *must* fault under the policy's canonical invocation environment
   (address interval disjoint from every region, or provably
   unaligned).  A fact true of every concrete execution is not provable
   safe, so no valid proof for the policy's safety predicate can exist.

One honest caveat, pinned down by the agreement tests: condition 5 is
evaluated on the *merged* (path-insensitive) abstract state, so a
hand-crafted binary whose faulting access is dynamically unreachable
only via path correlations the interval domain cannot express could in
principle be pre-rejected even though a proof of vacuous safety exists.
Prover-produced certificates never hit this: the certifier proves
accesses safe point-wise, not vacuously.  The pre-screen is therefore
documented (and tested) as sound for every binary the paper's producer
can emit; deployments loading exotic hand-built proofs can simply leave
``prescreen`` off — it is opt-in end to end.

WCET and termination are deliberately **not** reject conditions: the
paper's safety policies say nothing about termination, so an unbounded
loop with a valid proof must still admit (and then live under the
runtime's cycle budget).

:func:`analyze_program` bundles every pass (CFG, intervals, WCET, lint)
into one :class:`AnalysisReport` for the CLI and the API.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alpha.encoding import decode_program
from repro.alpha.isa import Br, Branch, Program, branch_target, \
    validate_program
from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.intervals import (
    AnalysisContext,
    IntervalAnalysis,
    analyze_intervals,
    context_for_policy,
)
from repro.analysis.lint import LintReport, lint_program
from repro.analysis.wcet import WcetReport, estimate_wcet
from repro.errors import PccError, ValidationError
from repro.pcc.container import PccBinary, unpack_invariants
from repro.perf.cost import AlphaCostModel
from repro.vcgen.policy import SafetyPolicy


@dataclass(frozen=True)
class PrescreenResult:
    """The fast-reject verdict.  ``ok=True`` means "no opinion" — the
    binary still needs full validation; it is never an admission."""

    ok: bool
    stage: str | None = None
    reason: str | None = None

    def __str__(self) -> str:
        if self.ok:
            return "prescreen: no objection"
        return f"prescreen[{self.stage}]: {self.reason}"


_PASS = PrescreenResult(True)


def _reject(stage: str, reason: str) -> PrescreenResult:
    return PrescreenResult(False, stage, reason)


def prescreen_blob(data: bytes | PccBinary, policy: SafetyPolicy,
                   context: AnalysisContext | None = None,
                   ) -> PrescreenResult:
    """Cheaply decide whether ``data`` is certain to fail validation
    under ``policy`` (see the module docstring for the exact contract).
    Never raises on untrusted input."""
    try:
        binary = data if isinstance(data, PccBinary) \
            else PccBinary.from_bytes(bytes(data))
    except ValidationError as error:
        return _reject("container", str(error))

    try:
        program = decode_program(binary.code)
    except PccError as error:
        return _reject("code", str(error))

    try:
        validate_program(program)
    except PccError as error:
        return _reject("structure", str(error))

    try:
        invariants = unpack_invariants(binary.invariants)
    except ValidationError as error:
        return _reject("invariants", str(error))
    for pc in invariants:
        if not 0 <= pc < len(program):
            return _reject("invariants",
                           f"invariant annotates pc={pc}, outside the "
                           "program")
    for pc, instruction in enumerate(program):
        if isinstance(instruction, (Branch, Br)):
            target = branch_target(pc, instruction)
            if target <= pc and target not in invariants:
                return _reject(
                    "invariants",
                    f"backward branch at pc={pc} to pc={target} has no "
                    "loop invariant")

    analysis = analyze_intervals(program,
                                 context or context_for_policy(policy))
    for access in analysis.definite_faults:
        what = "load" if access.kind == "rd" else "store"
        if access.verdict == "escape":
            return _reject(
                "memory",
                f"{what} at pc={access.pc} must fault: address interval "
                f"{access.interval} is disjoint from every "
                f"{'readable' if access.kind == 'rd' else 'writable'} "
                "region")
        return _reject(
            "memory",
            f"{what} at pc={access.pc} must fault: address interval "
            f"{access.interval} contains no 8-byte-aligned value")
    return _PASS


@dataclass(frozen=True)
class AnalysisReport:
    """Every analysis pass over one program, computed once and shared."""

    program: Program
    context: AnalysisContext
    cfg: ControlFlowGraph
    intervals: IntervalAnalysis
    wcet: WcetReport
    lint: LintReport

    def to_dict(self) -> dict:
        """A JSON-ready summary (the CLI's ``--json`` output)."""
        return {
            "context": self.context.name,
            "blocks": [
                {
                    "index": block.index,
                    "start": block.start,
                    "end": block.end,
                    "successors": list(block.successors),
                    "reachable": block.index in self.cfg.reachable,
                }
                for block in self.cfg.blocks
            ],
            "loops": [
                {"header": loop.header, "blocks": sorted(loop.blocks)}
                for loop in self.cfg.loops
            ],
            "accesses": [
                {
                    "pc": access.pc,
                    "kind": access.kind,
                    "interval": [access.interval.lo, access.interval.hi],
                    "verdict": access.verdict,
                    "alignment": access.alignment,
                }
                for access in self.intervals.accesses
            ],
            "wcet": {
                "classification": self.wcet.classification,
                "bound": self.wcet.bound,
                "loops": [
                    {"header": bound.header, "trips": bound.trips,
                     "body_cycles": bound.body_cycles,
                     "reason": bound.reason}
                    for bound in self.wcet.loop_bounds
                ],
            },
            "lint": [
                {"code": diag.code, "severity": diag.severity,
                 "pc": diag.pc, "message": diag.message}
                for diag in self.lint
            ],
        }


def analyze_program(program: Program,
                    context: AnalysisContext | None = None,
                    cost_model: AlphaCostModel | None = None,
                    ) -> AnalysisReport:
    """Run CFG recovery, intervals, WCET and lint over ``program``,
    sharing one CFG and one fixpoint across the passes."""
    resolved = context or AnalysisContext()
    cfg = build_cfg(program)
    intervals = analyze_intervals(cfg, resolved)
    wcet = estimate_wcet(cfg, resolved, cost_model, analysis=intervals)
    lint = lint_program(cfg)
    return AnalysisReport(program, resolved, cfg, intervals, wcet, lint)
