"""Ahead-of-time static analysis over decoded Alpha programs.

The subsystem PCC itself does not need — validation alone admits — but
which closes the two gaps the paper leaves open ahead of time, in the
same no-run-time-checks spirit:

* :mod:`repro.analysis.cfg` — basic-block CFG recovery (leaders, edges,
  reachability, dominators, natural loops);
* :mod:`repro.analysis.intervals` — a sound interval abstract
  interpreter over 64-bit words with widening, classifying every
  LDQ/STQ against the policy's memory regions;
* :mod:`repro.analysis.wcet` — worst-case cycle bounds from the CFG and
  the cost model (exact for loop-free filters; the source of
  ``cycle_budget="auto"``);
* :mod:`repro.analysis.lint` — advisory diagnostics with a stable
  report structure;
* :mod:`repro.analysis.prescreen` — the loader's opt-in sound
  fast-reject path, plus :func:`analyze_program` bundling every pass.
"""

from repro.analysis.cfg import (
    BasicBlock,
    ControlFlowGraph,
    NaturalLoop,
    build_cfg,
)
from repro.analysis.intervals import (
    TOP,
    AnalysisContext,
    Interval,
    IntervalAnalysis,
    MemoryAccess,
    analyze_intervals,
    checksum_context,
    context_for_policy,
    packet_filter_context,
)
from repro.analysis.lint import Diagnostic, LintReport, lint_program
from repro.analysis.prescreen import (
    AnalysisReport,
    PrescreenResult,
    analyze_program,
    prescreen_blob,
)
from repro.analysis.wcet import (
    MAX_LOOP_ITERATIONS,
    LoopBound,
    WcetReport,
    estimate_wcet,
)

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "BasicBlock",
    "ControlFlowGraph",
    "Diagnostic",
    "Interval",
    "IntervalAnalysis",
    "LintReport",
    "LoopBound",
    "MAX_LOOP_ITERATIONS",
    "MemoryAccess",
    "NaturalLoop",
    "PrescreenResult",
    "TOP",
    "WcetReport",
    "analyze_intervals",
    "analyze_program",
    "build_cfg",
    "checksum_context",
    "context_for_policy",
    "estimate_wcet",
    "lint_program",
    "packet_filter_context",
    "prescreen_blob",
]
