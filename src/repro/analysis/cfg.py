"""Basic-block control-flow-graph recovery over decoded Alpha programs.

The static-analysis subsystem works on exactly the instruction vector the
consumer received — the same :class:`~repro.alpha.isa.Program` that
validation decodes — so nothing here trusts the producer.  Unlike
:func:`repro.alpha.isa.validate_program`, CFG recovery never *rejects* a
program: malformed control flow (branches out of the code region,
fall-through past the last instruction) is recorded as explicit fault
exits so that the downstream passes (intervals, WCET, lint) can reason
about exactly what the hardware would do — the concrete machine raises
:class:`~repro.errors.MachineError` at those points, and the threaded
engine compiles them to trap slots.

Recovery follows the textbook recipe:

* **leaders** — pc 0, every in-range branch target, and every
  instruction following a control transfer;
* **edges** — fall-through plus taken targets; ``RET`` has no
  successors; out-of-range targets become fault exits, not edges;
* **reachability** — forward DFS from the entry block;
* **dominators** — iterative dataflow over reachable blocks in reverse
  post order;
* **natural loops** — one per back edge ``u -> h`` where ``h``
  dominates ``u``, merged per header; the body is everything that can
  reach ``u`` without passing through ``h``.

Retreating edges that are *not* back edges (irreducible control flow)
are surfaced separately: the interval analysis still converges on them
(widening is trigger-counted, not loop-header-gated), but the WCET pass
refuses to bound them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alpha.isa import Br, Branch, Program, Ret, branch_target


@dataclass(frozen=True)
class BasicBlock:
    """One maximal straight-line run of instructions.

    ``start``/``end`` delimit the pc range (``end`` exclusive);
    ``successors`` are *block indices*; ``fault_targets`` are the pcs of
    control transfers out of this block that leave the program (the
    machine faults there); ``falls_off`` marks a block whose
    fall-through leaves the program (same fault, implicit transfer).
    """

    index: int
    start: int
    end: int
    successors: tuple[int, ...]
    fault_targets: tuple[int, ...] = ()
    falls_off: bool = False

    @property
    def terminator_pc(self) -> int:
        return self.end - 1

    def __str__(self) -> str:
        succ = ", ".join(f"B{s}" for s in self.successors) or "exit"
        return f"B{self.index}[pc {self.start}..{self.end - 1}] -> {succ}"


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop: header block, body blocks, back-edge sources."""

    header: int
    blocks: frozenset[int]
    back_edge_sources: tuple[int, ...]

    def __str__(self) -> str:
        return (f"loop@B{self.header} "
                f"{{{', '.join(f'B{b}' for b in sorted(self.blocks))}}}")


class ControlFlowGraph:
    """The recovered CFG; build with :func:`build_cfg`."""

    def __init__(self, program: Program, blocks: tuple[BasicBlock, ...],
                 block_of: tuple[int, ...]) -> None:
        self.program = program
        self.blocks = blocks
        #: pc -> index of the containing block.
        self.block_of = block_of
        self.predecessors: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(p.index for p in blocks
                         if block.index in p.successors))
            for block in blocks)
        self.reachable: frozenset[int] = self._reach()
        self.dominators: dict[int, frozenset[int]] = self._dominators()
        self.back_edges: tuple[tuple[int, int], ...] = tuple(
            (block.index, succ)
            for block in blocks if block.index in self.reachable
            for succ in block.successors
            if succ in self.dominators.get(block.index, frozenset()))
        self.loops: tuple[NaturalLoop, ...] = self._natural_loops()
        self.retreating_edges: tuple[tuple[int, int], ...] = \
            self._retreating_edges()

    # -- construction helpers -------------------------------------------

    def _reach(self) -> frozenset[int]:
        seen = {0} if self.blocks else set()
        stack = [0] if self.blocks else []
        while stack:
            for succ in self.blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return frozenset(seen)

    def _post_order(self) -> list[int]:
        order: list[int] = []
        seen: set[int] = set()

        def visit(index: int) -> None:
            stack = [(index, iter(self.blocks[index].successors))]
            seen.add(index)
            while stack:
                node, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(
                            (succ, iter(self.blocks[succ].successors)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        if self.blocks:
            visit(0)
        return order

    def _dominators(self) -> dict[int, frozenset[int]]:
        reachable = self.reachable
        if not reachable:
            return {}
        rpo = list(reversed(self._post_order()))
        every = frozenset(reachable)
        dom: dict[int, frozenset[int]] = {index: every for index in reachable}
        dom[0] = frozenset({0})
        changed = True
        while changed:
            changed = False
            for index in rpo:
                if index == 0:
                    continue
                preds = [p for p in self.predecessors[index]
                         if p in reachable]
                if not preds:
                    continue
                new = frozenset.intersection(*(dom[p] for p in preds))
                new = new | {index}
                if new != dom[index]:
                    dom[index] = new
                    changed = True
        return dom

    def _natural_loops(self) -> tuple[NaturalLoop, ...]:
        bodies: dict[int, set[int]] = {}
        sources: dict[int, list[int]] = {}
        for source, header in self.back_edges:
            body = bodies.setdefault(header, {header})
            sources.setdefault(header, []).append(source)
            stack = [source]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(p for p in self.predecessors[node]
                             if p in self.reachable)
        return tuple(NaturalLoop(header, frozenset(body),
                                 tuple(sorted(sources[header])))
                     for header, body in sorted(bodies.items()))

    def _retreating_edges(self) -> tuple[tuple[int, int], ...]:
        """Edges against the DFS order (superset of the back edges);
        any retreating edge that is *not* a back edge is irreducible."""
        position = {index: rank
                    for rank, index in enumerate(self._post_order())}
        return tuple(
            (block.index, succ)
            for block in self.blocks if block.index in self.reachable
            for succ in block.successors
            if succ in position and position[succ] >= position[block.index])

    # -- queries ---------------------------------------------------------

    @property
    def irreducible_edges(self) -> tuple[tuple[int, int], ...]:
        back = set(self.back_edges)
        return tuple(edge for edge in self.retreating_edges
                     if edge not in back)

    def block_at(self, pc: int) -> BasicBlock:
        return self.blocks[self.block_of[pc]]

    def dominates(self, a: int, b: int) -> bool:
        """Does block ``a`` dominate block ``b``? (reachable blocks)"""
        return a in self.dominators.get(b, frozenset())

    def instructions(self, block: BasicBlock):
        """The instruction slice of ``block``, with absolute pcs."""
        for pc in range(block.start, block.end):
            yield pc, self.program[pc]


def build_cfg(program: Program) -> ControlFlowGraph:
    """Recover the basic-block CFG of ``program`` (never raises on
    malformed control flow; see the module docstring)."""
    size = len(program)
    if size == 0:
        return ControlFlowGraph(program, (), ())

    leaders = {0}
    for pc, instruction in enumerate(program):
        if isinstance(instruction, (Branch, Br)):
            target = branch_target(pc, instruction)
            if 0 <= target < size:
                leaders.add(target)
        if isinstance(instruction, (Branch, Br, Ret)) and pc + 1 < size:
            leaders.add(pc + 1)

    starts = sorted(leaders)
    bounds = {start: (starts[rank + 1] if rank + 1 < len(starts) else size)
              for rank, start in enumerate(starts)}
    index_of_start = {start: rank for rank, start in enumerate(starts)}

    blocks: list[BasicBlock] = []
    block_of = [0] * size
    for rank, start in enumerate(starts):
        end = bounds[start]
        for pc in range(start, end):
            block_of[pc] = rank
        terminator = program[end - 1]
        successors: list[int] = []
        faults: list[int] = []
        falls_off = False
        if isinstance(terminator, Ret):
            pass
        elif isinstance(terminator, Br):
            target = branch_target(end - 1, terminator)
            if 0 <= target < size:
                successors.append(index_of_start[target])
            else:
                faults.append(target)
        elif isinstance(terminator, Branch):
            target = branch_target(end - 1, terminator)
            if 0 <= target < size:
                successors.append(index_of_start[target])
            else:
                faults.append(target)
            if end < size:
                successors.append(index_of_start[end])
            else:
                falls_off = True
        else:
            if end < size:
                successors.append(index_of_start[end])
            else:
                falls_off = True
        # A branch whose taken target IS the fall-through (offset 0)
        # yields the same successor twice; the edge set is deduplicated.
        blocks.append(BasicBlock(rank, start, end,
                                 tuple(dict.fromkeys(successors)),
                                 tuple(faults), falls_off))
    return ControlFlowGraph(program, tuple(blocks), tuple(block_of))
