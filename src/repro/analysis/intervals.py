"""Sound interval abstract interpretation over 64-bit machine words.

The domain is the classic interval lattice over the *unsigned* value of
a register (every register holds ``value & (2**64 - 1)``, exactly as
:mod:`repro.alpha.machine` stores it): an abstract value is a pair
``lo <= hi`` meaning "every concrete value lies in ``[lo, hi]``", bottom
(``None``) means "this point is unreachable", and ``TOP`` is the full
word range.  Signed branch conditions (BGE/BLT/BGT/BLE test the two's-
complement sign) refine against the unsigned images of the signed
half-ranges: ``signed >= 0`` is ``[0, 2**63 - 1]`` and ``signed < 0`` is
``[2**63, 2**64 - 1]``, so no separate signed domain is needed.

Soundness discipline — every transfer function over-approximates the
concrete operator in :func:`repro.alpha.machine._operate`:

* wrap-around arithmetic (``ADDQ``/``SUBQ``/``LDA``/``LDAH``) maps the
  exact unbounded-endpoint interval through ``mod 2**64``; if the image
  is not contiguous, the result is ``TOP``;
* bit operations use the standard bounds (``AND`` shrinks below the
  smaller upper bound, ``BIS``/``XOR`` stay below the next power of
  two), exact when both operands are singletons;
* comparisons and byte extracts fold to singletons when the operand
  intervals decide them;
* loads return ``TOP`` (memory contents are not tracked).

The fixpoint engine is a worklist over the CFG with **widening**: a
block whose entry state keeps growing is widened to ``TOP`` per drifting
bound after ``widen_after`` joins.  The trigger is a per-block join
counter rather than a loop-header test, so termination holds even on
irreducible control flow.  Branch refinement is applied per *edge*, so
the state entering a loop body already reflects the loop guard.

Every ``LDQ``/``STQ`` is classified against the policy's readable /
writable regions (:class:`AnalysisContext`): ``safe`` (the whole address
interval fits inside one region, 8-byte access included), ``escape``
(no address in the interval can legally complete — every concrete
execution reaching the instruction faults), or ``unknown`` (the interval
straddles region boundaries; run-time behaviour depends on data the
analysis cannot see).  Alignment is classified the same way.  Only the
*definite* verdicts (``escape``, never-aligned) are strong enough for
the loader's pre-screen to act on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, NamedTuple

from repro.alpha.isa import (
    NUM_REGS,
    Branch,
    Instruction,
    Lda,
    Ldah,
    Ldq,
    Lit,
    Operate,
    Program,
    Ret,
    Stq,
)
from repro.alpha.machine import _sext16
from repro.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.filters.packets import MAX_FRAME, MIN_FRAME
from repro.filters.policy import PACKET_BASE, SCRATCH_BASE, SCRATCH_SIZE
from repro.vcgen.policy import SafetyPolicy

WORD_MASK = (1 << 64) - 1
_SIGN = 1 << 63


class Interval(NamedTuple):
    """A non-empty unsigned interval ``[lo, hi]``; bottom is ``None``."""

    lo: int
    hi: int

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        if self.is_constant:
            return f"{{{self.lo:#x}}}" if self.lo > 9 else f"{{{self.lo}}}"
        if self == TOP:
            return "T"
        return f"[{self.lo:#x}, {self.hi:#x}]"


TOP = Interval(0, WORD_MASK)
ZERO = Interval(0, 0)
BIT = Interval(0, 1)

#: An abstract register file: one interval per register, or ``None``
#: for an unreachable program point.
State = tuple  # tuple[Interval, ...]


def const(value: int) -> Interval:
    value &= WORD_MASK
    return Interval(value, value)


def join(a: Interval | None, b: Interval | None) -> Interval | None:
    if a is None:
        return b
    if b is None:
        return a
    return Interval(min(a.lo, b.lo), max(a.hi, b.hi))


def meet(a: Interval, lo: int, hi: int) -> Interval | None:
    new_lo = max(a.lo, lo)
    new_hi = min(a.hi, hi)
    if new_lo > new_hi:
        return None
    return Interval(new_lo, new_hi)


def widen(old: Interval, new: Interval) -> Interval:
    """Classic interval widening: a drifting bound jumps to the limit."""
    return Interval(0 if new.lo < old.lo else old.lo,
                    WORD_MASK if new.hi > old.hi else old.hi)


def _wrap(lo: int, hi: int) -> Interval:
    """The image of the exact (unbounded-endpoint) interval under
    ``mod 2**64``; ``TOP`` when the image is not contiguous."""
    if hi - lo >= WORD_MASK:
        return TOP
    lo_w = lo & WORD_MASK
    hi_w = hi & WORD_MASK
    if lo_w <= hi_w:
        return Interval(lo_w, hi_w)
    return TOP


# -- transfer functions ------------------------------------------------


def _bitlen_bound(a: Interval, b: Interval) -> int:
    return (1 << max(a.hi.bit_length(), b.hi.bit_length())) - 1


def _extract(a: Interval, b: Interval, width_mask: int) -> Interval:
    if a.is_constant and b.is_constant:
        return const((a.lo >> (8 * (b.lo & 7))) & width_mask)
    return Interval(0, min(a.hi, width_mask))


def operate_interval(name: str, a: Interval, b: Interval) -> Interval:
    """Abstract counterpart of :func:`repro.alpha.machine._operate`."""
    if name == "ADDQ":
        return _wrap(a.lo + b.lo, a.hi + b.hi)
    if name == "SUBQ":
        return _wrap(a.lo - b.hi, a.hi - b.lo)
    if name == "MULQ":
        if a.hi * b.hi <= WORD_MASK:
            return Interval(a.lo * b.lo, a.hi * b.hi)
        if a.is_constant and b.is_constant:
            return const(a.lo * b.lo)
        return TOP
    if name == "AND":
        if a.is_constant and b.is_constant:
            return const(a.lo & b.lo)
        return Interval(0, min(a.hi, b.hi))
    if name == "BIS":
        if a.is_constant and b.is_constant:
            return const(a.lo | b.lo)
        return Interval(max(a.lo, b.lo), _bitlen_bound(a, b))
    if name == "XOR":
        if a.is_constant and b.is_constant:
            return const(a.lo ^ b.lo)
        return Interval(0, _bitlen_bound(a, b))
    if name == "SLL":
        if b.is_constant:
            shift = b.lo & 63
            if a.hi << shift <= WORD_MASK:
                return Interval(a.lo << shift, a.hi << shift)
        return TOP
    if name == "SRL":
        if b.is_constant:
            shift = b.lo & 63
            return Interval(a.lo >> shift, a.hi >> shift)
        return Interval(0, a.hi)
    if name == "CMPEQ":
        if a.is_constant and b.is_constant:
            return const(1 if a.lo == b.lo else 0)
        if a.hi < b.lo or b.hi < a.lo:
            return ZERO
        return BIT
    if name == "CMPULT":
        if a.hi < b.lo:
            return const(1)
        if a.lo >= b.hi:
            return ZERO
        return BIT
    if name == "CMPULE":
        if a.hi <= b.lo:
            return const(1)
        if a.lo > b.hi:
            return ZERO
        return BIT
    if name == "EXTBL":
        return _extract(a, b, 0xFF)
    if name == "EXTWL":
        return _extract(a, b, 0xFFFF)
    if name == "EXTLL":
        return _extract(a, b, 0xFFFFFFFF)
    return TOP  # unknown operate: decode would have rejected it


def _rb_interval(state: State, rb) -> Interval:
    if isinstance(rb, Lit):
        return const(rb.value)
    return state[rb.index]


def address_interval(state: State, instruction: Ldq | Stq) -> Interval:
    """The abstract address of a memory access, wrap-exact like the
    machine's ``(base + sext16(disp)) & WORD_MASK``."""
    base = state[instruction.rs.index] if isinstance(instruction, Ldq) \
        else state[instruction.rd.index]
    disp = _sext16(instruction.disp)
    return _wrap(base.lo + disp, base.hi + disp)


def transfer(state: State, instruction: Instruction) -> State:
    """Abstractly execute one non-control instruction."""
    if isinstance(instruction, Operate):
        # The zero idiom SUBQ/XOR r, r, r is exactly 0 no matter what
        # interval r carries — the interval product of a register with
        # itself loses the correlation, so fold it here.  This is what
        # keeps mid-program re-zeroed loop counters (the KV family's
        # second table scan) constant and their loops WCET-bounded.
        if (instruction.name in ("SUBQ", "XOR")
                and not isinstance(instruction.rb, Lit)
                and instruction.ra.index == instruction.rb.index):
            return _assign(state, instruction.rc.index, const(0))
        value = operate_interval(instruction.name,
                                 state[instruction.ra.index],
                                 _rb_interval(state, instruction.rb))
        return _assign(state, instruction.rc.index, value)
    if isinstance(instruction, Lda):
        base = state[instruction.rs.index]
        disp = _sext16(instruction.disp)
        return _assign(state, instruction.rd.index,
                       _wrap(base.lo + disp, base.hi + disp))
    if isinstance(instruction, Ldah):
        base = state[instruction.rs.index]
        disp = _sext16(instruction.disp) << 16
        return _assign(state, instruction.rd.index,
                       _wrap(base.lo + disp, base.hi + disp))
    if isinstance(instruction, Ldq):
        return _assign(state, instruction.rd.index, TOP)
    # STQ, Branch, Br, Ret do not write registers.
    return state


def _assign(state: State, index: int, value: Interval) -> State:
    updated = list(state)
    updated[index] = value
    return tuple(updated)


# -- branch refinement -------------------------------------------------

#: Unsigned images of the signed half-planes.
_NONNEG = (0, _SIGN - 1)
_NEG = (_SIGN, WORD_MASK)


def refine_branch(state: State, name: str, reg: int,
                  taken: bool) -> State | None:
    """Refine ``state`` with the fact that branch ``name`` on register
    ``reg`` was (or was not) taken; ``None`` if the edge is infeasible."""
    value = state[reg]
    if name == "BEQ":
        refined = meet(value, 0, 0) if taken else _refine_nonzero(value)
    elif name == "BNE":
        refined = _refine_nonzero(value) if taken else meet(value, 0, 0)
    elif name == "BGE":
        bound = _NONNEG if taken else _NEG
        refined = meet(value, *bound)
    elif name == "BLT":
        bound = _NEG if taken else _NONNEG
        refined = meet(value, *bound)
    elif name == "BGT":
        refined = (meet(value, 1, _SIGN - 1) if taken
                   else _union_meet(value, (0, 0), _NEG))
    elif name == "BLE":
        refined = (_union_meet(value, (0, 0), _NEG) if taken
                   else meet(value, 1, _SIGN - 1))
    else:
        refined = value
    if refined is None:
        return None
    return _assign(state, reg, refined)


def _refine_nonzero(value: Interval) -> Interval | None:
    if value.lo == 0:
        if value.hi == 0:
            return None
        return Interval(1, value.hi)
    return value


def _union_meet(value: Interval, first: tuple[int, int],
                second: tuple[int, int]) -> Interval | None:
    """Meet with a union of two ranges, hulled back into one interval."""
    return join(meet(value, *first), meet(value, *second))


# -- the invocation context -------------------------------------------


@dataclass(frozen=True)
class AnalysisContext:
    """Entry-state assumptions plus the policy's memory regions.

    ``entry`` maps register index to its initial interval; unmentioned
    registers start at ``{0}`` (the machine zeroes the register file).
    ``readable``/``writable`` are ``(base, size)`` pairs naming where an
    8-byte access can legally land; ``None`` disables escape
    classification (the policy's region structure is unknown — every
    access classifies as ``unknown``).

    The regions are the policy's *canonical invocation environment* —
    the concrete bases its semantic checkers and the dispatch runtime
    use.  Escape verdicts are therefore statements about invocations in
    that environment, which is exactly what the runtime dispatches.
    """

    name: str = "anonymous"
    entry: Mapping[int, Interval] = field(default_factory=dict)
    readable: tuple[tuple[int, int], ...] | None = None
    writable: tuple[tuple[int, int], ...] | None = None

    def entry_state(self) -> State:
        return tuple(self.entry.get(index, ZERO)
                     for index in range(NUM_REGS))


def _pad8(size: int) -> int:
    return (size + 7) & ~7


def packet_filter_context(min_frame: int = MIN_FRAME,
                          max_frame: int = MAX_FRAME,
                          packet_base: int = PACKET_BASE,
                          scratch_base: int = SCRATCH_BASE,
                          ) -> AnalysisContext:
    """The §3 packet-filter invocation: r1 = packet, r2 = length in
    ``[min_frame, max_frame]``, r3 = scratch.  The packet region is
    padded to a word boundary exactly as the kernel maps it."""
    packet = (packet_base, _pad8(max_frame))
    scratch = (scratch_base, SCRATCH_SIZE)
    return AnalysisContext(
        name="packet-filter",
        entry={1: const(packet_base),
               2: Interval(min_frame, max_frame),
               3: const(scratch_base)},
        readable=(packet, scratch),
        writable=(scratch,),
    )


def checksum_context(max_length: int = 1 << 16,
                     buffer_base: int | None = None) -> AnalysisContext:
    """The checksum-buffer policy: r1 = read-only buffer, r2 = length
    (a positive multiple of 8)."""
    from repro.filters.checksum import BUFFER_BASE
    base = BUFFER_BASE if buffer_base is None else buffer_base
    return AnalysisContext(
        name="checksum-buffer",
        entry={1: const(base), 2: Interval(8, max_length)},
        readable=((base, max_length),),
        writable=(),
    )


def kv_context(min_frame: int = MIN_FRAME,
               max_frame: int = MAX_FRAME,
               packet_base: int = PACKET_BASE,
               state_base: int | None = None) -> AnalysisContext:
    """The write-capable KV-family invocation: r1 = writable packet,
    r2 = length in ``[min_frame, max_frame]``, r3 = the persistent
    160-byte state area (readable and writable)."""
    from repro.filters.kv import KV_STATE_BASE, STATE_SIZE
    base = KV_STATE_BASE if state_base is None else state_base
    packet = (packet_base, _pad8(max_frame))
    state = (base, STATE_SIZE)
    return AnalysisContext(
        name="kv-packet",
        entry={1: const(packet_base),
               2: Interval(min_frame, max_frame),
               3: const(base)},
        readable=(packet, state),
        writable=(packet, state),
    )


def context_for_policy(policy: SafetyPolicy) -> AnalysisContext:
    """The canonical context for a known policy; policies the analysis
    has no region model for get a permissive context (entry registers
    unconstrained, no escape classification)."""
    if policy.name == "packet-filter":
        return packet_filter_context()
    if policy.name == "checksum-buffer":
        return checksum_context()
    if policy.name == "kv-packet":
        return kv_context()
    return AnalysisContext(name=policy.name,
                           entry={index: TOP for index in range(NUM_REGS)})


# -- access classification --------------------------------------------


@dataclass(frozen=True)
class MemoryAccess:
    """One classified LDQ/STQ site.

    ``verdict``: ``safe`` / ``unknown`` / ``escape`` (see module
    docstring); ``alignment``: ``always`` / ``maybe`` / ``never``.
    ``definite_fault`` is True when *every* concrete execution reaching
    this pc faults — the only condition the pre-screen may reject on.
    """

    pc: int
    kind: str                     # "rd" or "wr"
    interval: Interval
    verdict: str
    alignment: str

    @property
    def definite_fault(self) -> bool:
        return self.verdict == "escape" or self.alignment == "never"


def _classify_regions(interval: Interval,
                      regions: tuple[tuple[int, int], ...] | None) -> str:
    if regions is None:
        return "unknown"
    for base, size in regions:
        if size >= 8 and base <= interval.lo and interval.hi + 8 <= base + size:
            return "safe"
    for base, size in regions:
        if size >= 8 and interval.lo <= base + size - 8 \
                and base <= interval.hi:
            return "unknown"
    return "escape"


def _classify_alignment(interval: Interval) -> str:
    if interval.is_constant:
        return "always" if interval.lo & 7 == 0 else "never"
    first_aligned = (interval.lo + 7) & ~7
    if first_aligned > interval.hi:
        return "never"
    # A non-constant interval containing an aligned value may contain
    # unaligned ones too; proving all-aligned would need a stride
    # (congruence) domain, which intervals cannot express.
    return "maybe"


def classify_access(state: State, instruction: Ldq | Stq,
                    context: AnalysisContext, pc: int) -> MemoryAccess:
    interval = address_interval(state, instruction)
    if isinstance(instruction, Ldq):
        kind, regions = "rd", context.readable
    else:
        kind, regions = "wr", context.writable
    return MemoryAccess(pc=pc, kind=kind, interval=interval,
                        verdict=_classify_regions(interval, regions),
                        alignment=_classify_alignment(interval))


# -- the fixpoint engine ----------------------------------------------


def _join_states(a: State | None, b: State | None) -> State | None:
    if a is None:
        return b
    if b is None:
        return a
    return tuple(join(x, y) for x, y in zip(a, b))


def _widen_states(old: State, new: State) -> State:
    return tuple(widen(x, y) for x, y in zip(old, new))


def flow_block(cfg: ControlFlowGraph, block: BasicBlock, state: State
               ) -> list[tuple[int, State | None]]:
    """Push ``state`` through ``block``; returns per-successor edge
    states with branch refinement applied (``None`` = edge infeasible)."""
    for pc in range(block.start, block.end - 1):
        state = transfer(state, cfg.program[pc])
    terminator = cfg.program[block.end - 1]
    if isinstance(terminator, Branch):
        reg = terminator.rs.index
        taken_target = block.end + terminator.offset
        edges = []
        for succ in block.successors:
            succ_start = cfg.blocks[succ].start
            taken = succ_start == taken_target
            fallthrough = succ_start == block.end
            if taken and fallthrough:
                # offset 0: both arcs land on the same block — no
                # refinement is sound for the merged edge.
                edges.append((succ, state))
            else:
                edges.append((succ, refine_branch(
                    state, terminator.name, reg, taken)))
        return edges
    state = transfer(state, terminator)
    return [(succ, state) for succ in block.successors]


class IntervalAnalysis:
    """The fixpoint result: per-block entry states, per-edge refined
    states, and every memory access classified."""

    def __init__(self, cfg: ControlFlowGraph, context: AnalysisContext,
                 widen_after: int = 3) -> None:
        self.cfg = cfg
        self.context = context
        self.block_entry: dict[int, State] = {}
        self.edge_states: dict[tuple[int, int], State] = {}
        self._widen_after = widen_after
        self._run()
        self.accesses: tuple[MemoryAccess, ...] = self._classify_all()

    # -- engine ----------------------------------------------------------

    def _flow(self, block: BasicBlock, state: State
              ) -> list[tuple[int, State | None]]:
        return flow_block(self.cfg, block, state)

    def _run(self) -> None:
        if not self.cfg.blocks:
            return
        entry = self.context.entry_state()
        joins: dict[int, int] = {}
        self.block_entry[0] = entry
        worklist = [0]
        while worklist:
            index = worklist.pop()
            block = self.cfg.blocks[index]
            state = self.block_entry.get(index)
            if state is None:
                continue
            for succ, edge_state in self._flow(block, state):
                self.edge_states[(index, succ)] = edge_state
                if edge_state is None:
                    continue
                old = self.block_entry.get(succ)
                new = _join_states(old, edge_state)
                if old is not None and new == old:
                    continue
                if old is not None:
                    joins[succ] = joins.get(succ, 0) + 1
                    if joins[succ] > self._widen_after:
                        new = _widen_states(old, new)
                        if new == old:
                            continue
                self.block_entry[succ] = new
                if succ not in worklist:
                    worklist.append(succ)

    # -- per-pc queries --------------------------------------------------

    def state_at(self, pc: int) -> State | None:
        """The abstract register file *before* executing ``pc``;
        ``None`` when the analysis proves the pc unreachable."""
        if not 0 <= pc < len(self.cfg.program):
            raise IndexError(f"pc {pc} outside program")
        block = self.cfg.block_at(pc)
        state = self.block_entry.get(block.index)
        if state is None:
            return None
        for earlier in range(block.start, pc):
            state = transfer(state, self.cfg.program[earlier])
        return state

    def register_interval(self, pc: int, reg: int) -> Interval | None:
        state = self.state_at(pc)
        return None if state is None else state[reg]

    def exit_interval(self, reg: int = 0) -> Interval | None:
        """Join of ``reg``'s interval over every reachable RET."""
        result: Interval | None = None
        for pc, instruction in enumerate(self.cfg.program):
            if isinstance(instruction, Ret):
                state = self.state_at(pc)
                if state is not None:
                    result = join(result, state[reg])
        return result

    def entry_state_from_outside(self, loop_blocks: frozenset[int],
                                 header: int) -> State | None:
        """Join of the states entering ``header`` along non-loop edges
        (plus the program entry state when the header is the entry
        block) — the abstraction of "first arrival" at the loop."""
        state: State | None = None
        if header == 0:
            state = self.context.entry_state()
        for pred in self.cfg.predecessors[header]:
            if pred in loop_blocks:
                continue
            state = _join_states(state,
                                 self.edge_states.get((pred, header)))
        return state

    # -- classification --------------------------------------------------

    def _classify_all(self) -> tuple[MemoryAccess, ...]:
        accesses = []
        for pc, instruction in enumerate(self.cfg.program):
            if not isinstance(instruction, (Ldq, Stq)):
                continue
            state = self.state_at(pc)
            if state is None:
                continue    # unreachable: nothing to classify
            accesses.append(classify_access(state, instruction,
                                            self.context, pc))
        return tuple(accesses)

    @property
    def flagged(self) -> tuple[MemoryAccess, ...]:
        """Accesses whose address interval can leave the policy regions
        (``escape`` or ``unknown``) or misalign."""
        return tuple(access for access in self.accesses
                     if access.verdict != "safe"
                     or access.alignment != "always")

    @property
    def definite_faults(self) -> tuple[MemoryAccess, ...]:
        return tuple(access for access in self.accesses
                     if access.definite_fault)


def analyze_intervals(program: Program | ControlFlowGraph,
                      context: AnalysisContext | None = None,
                      widen_after: int = 3) -> IntervalAnalysis:
    """Run the interval analysis; accepts a program or a prebuilt CFG."""
    cfg = program if isinstance(program, ControlFlowGraph) \
        else build_cfg(program)
    return IntervalAnalysis(cfg, context or AnalysisContext(),
                            widen_after)
