"""Diagnostics over recovered CFGs — the advisory layer.

Nothing here gates admission: PCC validation is the only admission path
and the pre-screen (:mod:`repro.analysis.prescreen`) only fast-rejects.
Lint reports the things a certifying producer usually wants to know
*before* paying the prover:

==================== ======== =========================================
code                 severity meaning
==================== ======== =========================================
invalid-branch-target error   a control transfer leaves the program;
                              the machine faults there
fall-through-end      error   execution can run off the last
                              instruction (same fault)
missing-ret           error   no RET is reachable from entry — every
                              execution faults or loops forever
unreachable-block     warning code no execution can reach
dead-store            warning a register write no later read can see
clobbered-input       warning a write to a pinned input register
                              (packet base / length / scratch by
                              default) — legal, but usually a bug in
                              hand-written filters
==================== ======== =========================================

Dead-store detection is a standard backward liveness fixpoint over the
CFG.  The return register (r0) is live out of every exiting block, and
*every* register is treated as live out of fault exits — a trap slot
conceptually exposes the whole register file to the fault handler, and
the conservative choice avoids flagging stores on paths the machine
never completes.

The report structure is stable: diagnostics sort by (pc, code) and the
dataclasses are frozen, so snapshot-style tests and the CLI can rely on
deterministic output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alpha.isa import (
    NUM_REGS,
    Program,
    Ret,
    read_registers,
    written_register,
)
from repro.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg

#: Registers a packet filter receives its arguments in (base, length,
#: scratch); writes to these are flagged as ``clobbered-input``.
DEFAULT_PINNED_REGISTERS = (1, 2, 3)


@dataclass(frozen=True)
class Diagnostic:
    """One finding; ``pc`` is the anchoring instruction (or the block
    start for block-level findings)."""

    code: str
    severity: str               # "error" | "warning"
    pc: int
    message: str

    def __str__(self) -> str:
        return f"pc {self.pc:3d}  {self.severity}: {self.message} " \
               f"[{self.code}]"


@dataclass(frozen=True)
class LintReport:
    """All diagnostics for one program, sorted by (pc, code)."""

    diagnostics: tuple[Diagnostic, ...]

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity == "warning")

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)


def _control_flow_errors(cfg: ControlFlowGraph) -> list[Diagnostic]:
    found = []
    for block in cfg.blocks:
        for target in block.fault_targets:
            found.append(Diagnostic(
                "invalid-branch-target", "error", block.terminator_pc,
                f"branch target {target} is outside the program"))
        if block.falls_off:
            found.append(Diagnostic(
                "fall-through-end", "error", block.terminator_pc,
                "execution can fall through the last instruction"))
    return found


def _missing_ret(cfg: ControlFlowGraph) -> list[Diagnostic]:
    for index in cfg.reachable:
        block = cfg.blocks[index]
        if isinstance(cfg.program[block.terminator_pc], Ret):
            return []
    return [Diagnostic("missing-ret", "error", 0,
                       "no RET is reachable from entry")]


def _unreachable(cfg: ControlFlowGraph) -> list[Diagnostic]:
    return [Diagnostic("unreachable-block", "warning", block.start,
                       f"block B{block.index} "
                       f"(pc {block.start}..{block.end - 1}) "
                       "is unreachable")
            for block in cfg.blocks if block.index not in cfg.reachable]


ALL_REGS = frozenset(range(NUM_REGS))


def _live_out(cfg: ControlFlowGraph) -> dict[int, frozenset[int]]:
    """Backward liveness fixpoint: registers live out of each block."""
    live_in: dict[int, frozenset[int]] = {b.index: frozenset()
                                          for b in cfg.blocks}
    live_out: dict[int, frozenset[int]] = dict(live_in)

    def block_live_in(block: BasicBlock,
                      out: frozenset[int]) -> frozenset[int]:
        live = set(out)
        for pc in range(block.end - 1, block.start - 1, -1):
            written = written_register(cfg.program[pc])
            if written is not None:
                live.discard(written)
            live |= read_registers(cfg.program[pc])
        return frozenset(live)

    def exit_live(block: BasicBlock) -> frozenset[int]:
        if isinstance(cfg.program[block.terminator_pc], Ret):
            return frozenset({0})           # the verdict register
        if block.fault_targets or block.falls_off:
            return ALL_REGS                 # trap exposes everything
        return frozenset()

    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            out = exit_live(block)
            for succ in block.successors:
                out |= live_in[succ]
            new_in = block_live_in(block, out)
            if out != live_out[block.index] \
                    or new_in != live_in[block.index]:
                live_out[block.index] = out
                live_in[block.index] = new_in
                changed = True
    return live_out


def _dead_stores(cfg: ControlFlowGraph) -> list[Diagnostic]:
    live_out = _live_out(cfg)
    found = []
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue                        # already flagged unreachable
        live = set(live_out[block.index])
        for pc in range(block.end - 1, block.start - 1, -1):
            written = written_register(cfg.program[pc])
            if written is not None:
                if written not in live:
                    found.append(Diagnostic(
                        "dead-store", "warning", pc,
                        f"r{written} is overwritten or discarded "
                        "before any read"))
                live.discard(written)
            live |= read_registers(cfg.program[pc])
    return found


def _clobbered_inputs(cfg: ControlFlowGraph,
                      pinned: tuple[int, ...]) -> list[Diagnostic]:
    pinned_set = set(pinned)
    found = []
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        for pc, instruction in cfg.instructions(block):
            written = written_register(instruction)
            if written in pinned_set:
                found.append(Diagnostic(
                    "clobbered-input", "warning", pc,
                    f"r{written} is a pinned input register and is "
                    "overwritten here"))
    return found


def lint_program(program: Program | ControlFlowGraph,
                 pinned_registers: tuple[int, ...] =
                 DEFAULT_PINNED_REGISTERS) -> LintReport:
    """Run every check; never raises on malformed programs."""
    cfg = program if isinstance(program, ControlFlowGraph) \
        else build_cfg(program)
    if not cfg.blocks:
        return LintReport((Diagnostic("missing-ret", "error", 0,
                                      "empty program"),))
    diagnostics = (_control_flow_errors(cfg) + _missing_ret(cfg)
                   + _unreachable(cfg) + _dead_stores(cfg)
                   + _clobbered_inputs(cfg, pinned_registers))
    return LintReport(tuple(sorted(diagnostics,
                                   key=lambda d: (d.pc, d.code))))
