"""Worst-case cycle estimation from the CFG and the cost model.

PCC (the paper, §2) certifies memory safety but deliberately leaves
termination open; PR 3 papered over that with hand-picked per-invocation
``cycle_budget`` values.  This pass closes the gap the same
ahead-of-time way the rest of the pipeline works:

* **loop-free** programs (every paper filter) get an *exact* bound —
  the longest path through the acyclic CFG, block costs summed with
  :class:`repro.perf.cost.AlphaCostModel`;
* programs with **natural loops** get a sound bound when the interval
  analysis can bound each loop's trip count; the bound is the longest
  acyclic path plus, per loop, ``trips × body cost``;
* everything else (irreducible flow, nested loops, loops the analysis
  cannot bound) is **Unbounded** — ``bound`` is ``None`` and the
  runtime must fall back to an explicit budget.

Trip counts come from an *iteration-indexed* abstract simulation, more
precise than the widened global fixpoint: starting from the join of the
states entering the header from outside the loop, each round pushes the
header state once around the body and refines it along the back edge.
If round ``k`` proves the back edge infeasible, no execution traverses
it ``k`` times, so the body runs at most ``k + 1`` times (``trips = k``
extra passes beyond the one the acyclic path already counts).

Soundness versus the execution engine's accounting: the threaded engine
(and :meth:`ExecutionEngine.run_budgeted`) charges a whole basic block
before executing it, so observed cycles on any run — including runs that
fault mid-block — never exceed the sum of full block costs along the
executed path, which is exactly what this pass maximises.  Hence a
budget set to the WCET bound can never fire on a run the unbudgeted
engine would complete: ``cycle_budget="auto"`` is verdict-preserving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.alpha.isa import Program
from repro.analysis.cfg import ControlFlowGraph, NaturalLoop, build_cfg
from repro.analysis.intervals import (
    AnalysisContext,
    IntervalAnalysis,
    State,
    _join_states,
    analyze_intervals,
    flow_block,
)
from repro.perf.cost import ALPHA_175, AlphaCostModel

#: Default ceiling on the iteration-indexed loop simulation: a loop the
#: intervals cannot retire within this many abstract rounds is reported
#: Unbounded rather than searched forever.
MAX_LOOP_ITERATIONS = 256


@dataclass(frozen=True)
class LoopBound:
    """The trip-count verdict for one natural loop.

    ``trips`` bounds the number of *back-edge traversals* (extra passes
    beyond the first); ``None`` means the analysis could not bound the
    loop and the whole program is Unbounded.
    """

    header: int
    trips: int | None
    body_cycles: int
    reason: str

    @property
    def bounded(self) -> bool:
        return self.trips is not None

    def __str__(self) -> str:
        if self.trips is None:
            return f"loop@B{self.header}: unbounded ({self.reason})"
        return (f"loop@B{self.header}: <= {self.trips} extra pass(es) "
                f"x {self.body_cycles} cycles")


@dataclass(frozen=True)
class WcetReport:
    """The WCET verdict: ``exact`` / ``bounded`` / ``unbounded``.

    ``bound`` is in cycles of the supplied cost model (``None`` iff
    unbounded); ``acyclic_cycles`` is the longest-path component alone.
    """

    classification: str
    bound: int | None
    acyclic_cycles: int | None
    loop_bounds: tuple[LoopBound, ...]
    block_cycles: Mapping[int, int]

    @property
    def is_bounded(self) -> bool:
        return self.bound is not None

    def budget(self, slack: float = 0.0) -> int | None:
        """The cycle budget implied by this bound: ``ceil(bound * (1 +
        slack))``, at least 1; ``None`` when unbounded."""
        if self.bound is None:
            return None
        return max(1, math.ceil(self.bound * (1.0 + slack)))

    def __str__(self) -> str:
        if self.bound is None:
            return "WCET: unbounded"
        return f"WCET: {self.bound} cycles ({self.classification})"


def block_cycles(cfg: ControlFlowGraph,
                 cost_model: AlphaCostModel) -> dict[int, int]:
    """Total cycle charge of every block (the engine charges blocks
    whole, so per-block sums are the right granularity)."""
    return {block.index: sum(cost_model.cycles(instruction)
                             for _, instruction in cfg.instructions(block))
            for block in cfg.blocks}


def _loop_topo(cfg: ControlFlowGraph,
               loop: NaturalLoop) -> list[int] | None:
    """Topological order of the loop body with the back edge removed;
    ``None`` if the remainder is still cyclic (nested/irreducible)."""
    removed = {(source, loop.header) for source in loop.back_edge_sources}
    indegree = {index: 0 for index in loop.blocks}
    for index in loop.blocks:
        for succ in cfg.blocks[index].successors:
            if succ in loop.blocks and (index, succ) not in removed:
                indegree[succ] += 1
    ready = sorted(index for index, count in indegree.items()
                   if count == 0)
    order: list[int] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in cfg.blocks[node].successors:
            if succ in loop.blocks and (node, succ) not in removed:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
    if len(order) != len(loop.blocks):
        return None
    return order


def _one_pass(cfg: ControlFlowGraph, loop: NaturalLoop, topo: list[int],
              header_state: State) -> State | None:
    """Push a header-entry state once around the body; returns the
    refined state flowing along the back edge (``None`` = the back edge
    is infeasible from ``header_state``)."""
    removed = {(source, loop.header) for source in loop.back_edge_sources}
    states: dict[int, State] = {loop.header: header_state}
    back_state: State | None = None
    for index in topo:
        state = states.get(index)
        if state is None:
            continue
        for succ, edge_state in flow_block(cfg, cfg.blocks[index], state):
            if edge_state is None:
                continue
            if (index, succ) in removed:
                back_state = _join_states(back_state, edge_state)
            elif succ in loop.blocks:
                states[succ] = _join_states(states.get(succ), edge_state)
    return back_state


def bound_loop(analysis: IntervalAnalysis, loop: NaturalLoop,
               costs: Mapping[int, int],
               max_iterations: int = MAX_LOOP_ITERATIONS) -> LoopBound:
    """Bound one natural loop's back-edge traversals (module docstring)."""
    cfg = analysis.cfg
    body = sum(costs[index] for index in loop.blocks)
    if len(loop.back_edge_sources) != 1:
        return LoopBound(loop.header, None, body,
                         "multiple back edges")
    nested = [other.header for other in cfg.loops
              if other.header != loop.header
              and other.header in loop.blocks]
    if nested:
        return LoopBound(loop.header, None, body,
                         f"nested loop at B{nested[0]}")
    topo = _loop_topo(cfg, loop)
    if topo is None:
        return LoopBound(loop.header, None, body,
                         "cyclic body after back-edge removal")
    state = analysis.entry_state_from_outside(loop.blocks, loop.header)
    if state is None:
        # The analysis already proved the loop unreachable from outside;
        # it contributes nothing to any execution.
        return LoopBound(loop.header, 0, body, "unreachable")
    for trips in range(max_iterations + 1):
        next_state = _one_pass(cfg, loop, topo, state)
        if next_state is None:
            return LoopBound(loop.header, trips, body, "bounded")
        if next_state == state:
            return LoopBound(loop.header, None, body,
                             "abstract state reached a non-bottom "
                             "fixpoint")
        state = next_state
    return LoopBound(loop.header, None, body,
                     f"no bound within {max_iterations} abstract rounds")


def _longest_acyclic(cfg: ControlFlowGraph,
                     costs: Mapping[int, int]) -> int:
    """Longest path (in cycles) through the reachable CFG with back
    edges removed.  Callers guarantee the graph is reducible, so the
    DFS post order is a reverse topological order of that DAG."""
    back = set(cfg.back_edges)
    longest: dict[int, int] = {}
    for index in cfg._post_order():
        best = 0
        for succ in cfg.blocks[index].successors:
            if (index, succ) not in back:
                best = max(best, longest.get(succ, 0))
        longest[index] = costs[index] + best
    return longest.get(0, 0)


def estimate_wcet(program: Program | ControlFlowGraph,
                  context: AnalysisContext | None = None,
                  cost_model: AlphaCostModel | None = None,
                  analysis: IntervalAnalysis | None = None,
                  max_loop_iterations: int = MAX_LOOP_ITERATIONS,
                  ) -> WcetReport:
    """Estimate the worst-case cycle count of ``program``.

    Accepts a raw program, a prebuilt CFG, or (via ``analysis``) a
    finished interval analysis to reuse.  ``context`` defaults to the
    zero-entry :class:`AnalysisContext`, matching the machine's cleared
    register file.
    """
    model = cost_model or ALPHA_175
    if analysis is not None:
        cfg = analysis.cfg
    elif isinstance(program, ControlFlowGraph):
        cfg = program
    else:
        cfg = build_cfg(program)
    if not cfg.blocks:
        return WcetReport("exact", 0, 0, (), {})
    costs = block_cycles(cfg, model)

    if cfg.irreducible_edges:
        return WcetReport("unbounded", None, None, (), costs)

    if not cfg.loops:
        bound = _longest_acyclic(cfg, costs)
        return WcetReport("exact", bound, bound, (), costs)

    if analysis is None:
        analysis = analyze_intervals(cfg, context)
    loop_bounds = tuple(bound_loop(analysis, loop, costs,
                                   max_loop_iterations)
                        for loop in cfg.loops)
    acyclic = _longest_acyclic(cfg, costs)
    if any(not bound.bounded for bound in loop_bounds):
        return WcetReport("unbounded", None, acyclic, loop_bounds, costs)
    total = acyclic + sum(bound.trips * bound.body_cycles
                          for bound in loop_bounds)
    return WcetReport("bounded", total, acyclic, loop_bounds, costs)
