"""The §4 loop experiment: a certified IP-header checksum routine.

The paper hand-codes an IP checksum in 39 Alpha instructions with an
8-instruction core loop, "optimized by computing the 16-bit IP checksum
using 64-bit additions followed by a folding operation", certifies it with
an explicit loop invariant, and reports it beating the OSF/1 kernel's C
version by a factor of two.

This module provides:

* :data:`CHECKSUM_SOURCE` — the optimized routine (64-bit loads, two
  32-bit partial sums per word, branch-free folding, final byte swap;
  one's-complement arithmetic is byte-order independent, so summing
  little-endian words and swapping once at the end is correct);
* :func:`checksum_invariant` — the loop invariant mapped to the backward
  branch target, exactly the table a PCC binary carries (§4);
* :data:`NAIVE_CHECKSUM_SOURCE` — the "standard C version" stand-in: a
  straightforward 32-bit-at-a-time loop such as a mid-90s compiler would
  emit, used as the factor-of-two comparison baseline;
* :func:`reference_checksum` — the RFC 1071 reference the machines are
  checked against;
* :func:`checksum_policy` — buffer policy: ``r1`` = 8-byte-aligned
  buffer, ``r2`` = length in bytes (a positive multiple of 8 at least 8 —
  IP headers are padded with zeros to the next word, which leaves the
  one's-complement sum unchanged).

Calling convention: checksum returned in ``r0``.
"""

from __future__ import annotations

import struct
from typing import Callable, Mapping

from repro.alpha.machine import Memory
from repro.logic.formulas import Formula, Forall, Implies, conj, eq, ge, lt, rd
from repro.logic.terms import Var, add64, and64, mod64
from repro.vcgen.policy import SafetyPolicy, word_identity

#: Where the kernel maps the buffer for checksum invocations.
BUFFER_BASE = 0x0005_0000

CHECKSUM_SOURCE = """
        SUBQ   r4, r4, r4      % i := 0
        SUBQ   r0, r0, r0      % sum := 0
        BR     check
loop:   ADDQ   r1, r4, r5      % core loop: 8 instructions
        LDQ    r5, 0(r5)
        EXTLL  r5, 0, r6       % low 32 bits
        SRL    r5, 32, r7      % high 32 bits
        ADDQ   r0, r6, r0
        ADDQ   r0, r7, r0
        ADDQ   r4, 8, r4
check:  CMPULT r4, r2, r5
        BNE    r5, loop
        SRL    r0, 32, r5      % fold 64 -> 32
        EXTLL  r0, 0, r0
        ADDQ   r0, r5, r0
        SRL    r0, 16, r5      % fold 32 -> 16 (with carries)
        EXTWL  r0, 0, r0
        ADDQ   r0, r5, r0
        SRL    r0, 16, r5
        EXTWL  r0, 0, r0
        ADDQ   r0, r5, r0
        SRL    r0, 16, r5
        EXTWL  r0, 0, r0
        ADDQ   r0, r5, r0
        EXTBL  r0, 0, r5       % byte-swap the 16-bit sum
        SLL    r5, 8, r5
        EXTBL  r0, 1, r6
        BIS    r5, r6, r0
        SUBQ   r5, r5, r5      % complement: r0 := r0 XOR 0xFFFF
        LDA    r5, -1(r5)
        EXTWL  r5, 0, r5
        XOR    r0, r5, r0
        RET
"""

#: pc of the ``loop:`` label in :data:`CHECKSUM_SOURCE` (instruction 3).
CHECKSUM_LOOP_PC = 3

NAIVE_CHECKSUM_SOURCE = """
        SUBQ   r4, r4, r4      % i := 0
        SUBQ   r0, r0, r0      % sum := 0
        BR     check
loop:   SRL    r4, 3, r6       % word containing the 32-bit unit...
        SLL    r6, 3, r6       % ...at aligned offset (i >> 3) << 3
        ADDQ   r1, r6, r6
        LDQ    r6, 0(r6)
        EXTLL  r6, r4, r6      % the 32-bit unit at offset i
        ADDQ   r0, r6, r0
        ADDQ   r4, 4, r4
check:  CMPULT r4, r2, r5
        BNE    r5, loop
        SRL    r0, 32, r5
        EXTLL  r0, 0, r0
        ADDQ   r0, r5, r0
        SRL    r0, 16, r5
        EXTWL  r0, 0, r0
        ADDQ   r0, r5, r0
        SRL    r0, 16, r5
        EXTWL  r0, 0, r0
        ADDQ   r0, r5, r0
        SRL    r0, 16, r5
        EXTWL  r0, 0, r0
        ADDQ   r0, r5, r0
        EXTBL  r0, 0, r5
        SLL    r5, 8, r5
        EXTBL  r0, 1, r6
        BIS    r5, r6, r0
        SUBQ   r5, r5, r5
        LDA    r5, -1(r5)
        EXTWL  r5, 0, r5
        XOR    r0, r5, r0
        RET
"""

#: pc of the ``loop:`` label in :data:`NAIVE_CHECKSUM_SOURCE`.
NAIVE_LOOP_PC = 3


def _readable_buffer(index_var: str) -> Formula:
    index = Var(index_var)
    guard = conj([ge(index, 0), lt(index, Var("r2")),
                  eq(and64(index, 7), 0)])
    return Forall(index_var, Implies(guard, rd(add64(Var("r1"), index))))


def checksum_precondition() -> Formula:
    """``r1`` aligned buffer of ``r2`` bytes, all words readable."""
    r1, r2 = Var("r1"), Var("r2")
    return conj([
        word_identity(r1),
        word_identity(r2),
        lt(r2, 1 << 63),
        ge(r2, 8),
        _readable_buffer("i"),
    ])


def checksum_invariant() -> Formula:
    """The loop invariant at the backward-branch target.

    ``r4`` is the running byte offset: a valid word value, 8-byte aligned,
    and — established by the CMPULT/BNE just before every arrival —
    strictly below the buffer length.  The buffer facts are carried along
    because a cut point sees *only* the invariant (§4: invariants act as
    the preconditions of the acyclic fragments).
    """
    r1, r2, r4 = Var("r1"), Var("r2"), Var("r4")
    return conj([
        word_identity(r1),
        word_identity(r2),
        word_identity(r4),
        eq(and64(r4, 7), 0),
        lt(mod64(r4), mod64(r2)),
        _readable_buffer("i"),
    ])


def naive_invariant() -> Formula:
    """Invariant for the 32-bit-at-a-time baseline: the offset ``r4`` is
    only 4-byte aligned; the loaded *word* address is ``r4 & ~7``, whose
    alignment and bounds follow from ``r4 < r2`` and the mask."""
    r1, r2, r4 = Var("r1"), Var("r2"), Var("r4")
    return conj([
        word_identity(r1),
        word_identity(r2),
        word_identity(r4),
        eq(and64(r4, 3), 0),
        lt(mod64(r4), mod64(r2)),
        _readable_buffer("i"),
    ])


def checksum_policy() -> SafetyPolicy:
    """The buffer-checksum safety policy."""

    def make_checkers(registers: Mapping[int, int],
                      read_word: Callable[[int], int]):
        base = registers[1]
        length = registers[2]

        def can_read(address: int) -> bool:
            return base <= address < base + length

        def can_write(address: int) -> bool:
            return False

        return can_read, can_write

    return SafetyPolicy(
        name="checksum-buffer",
        precondition=checksum_precondition(),
        make_checkers=make_checkers,
    )


def pad_to_words(data: bytes) -> bytes:
    """Zero-pad to a multiple of 8 (zeros do not change the checksum)."""
    remainder = len(data) % 8
    if remainder:
        return data + b"\x00" * (8 - remainder)
    if not data:
        return b"\x00" * 8
    return data


def checksum_memory(data: bytes, base: int = BUFFER_BASE) -> Memory:
    memory = Memory()
    memory.map_region(base, pad_to_words(data), writable=False,
                      name="buffer")
    return memory


def checksum_registers(data: bytes, base: int = BUFFER_BASE
                       ) -> dict[int, int]:
    return {1: base, 2: len(pad_to_words(data))}


def reference_checksum(data: bytes) -> int:
    """RFC 1071 internet checksum of ``data`` (big-endian 16-bit words)."""
    padded = pad_to_words(data)
    total = sum(struct.unpack(f">{len(padded) // 2}H", padded))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


# -- multi-pass variants (incremental-certification workloads) -------------

#: Instructions in one pass of :func:`multipass_checksum_source` (the
#: loop-head cut point of pass ``k`` sits at ``3 + k * MULTIPASS_STRIDE``).
MULTIPASS_STRIDE = 11


def multipass_cut_points(passes: int) -> tuple[int, ...]:
    """The loop-head pcs of a ``passes``-pass program, in pass order."""
    return tuple(3 + k * MULTIPASS_STRIDE for k in range(passes))


def multipass_checksum_source(passes: int,
                              shifts: Mapping[int, int] | None = None,
                              commuted=()) -> str:
    """A ``passes``-pass digest over the checksum buffer, one loop per
    pass, each mixing the loaded word into ``r0`` with a multiply/shift
    round.

    Every pass is its own cut point (:func:`multipass_cut_points`), so
    the safety predicate has ``passes + 1`` independent obligations and
    a single-pass edit changes at most one of them — the workload the
    incremental-certification differential suite and
    ``benchmarks/bench_proof_store.py`` are built on.  Two edit knobs,
    both confined to one basic block per pass:

    * ``shifts`` maps a pass index to its mix-shift amount (default 7).
      The mixed registers are dead downstream, so a shift edit changes
      the *code* but provably not the safety predicate — the incremental
      path reuses every subproof and full validation still passes.
    * ``commuted`` lists pass indices whose address add is written
      ``r4 + r1`` instead of ``r1 + r4``.  The commuted ``rd()`` address
      term is structurally different, so toggling a pass re-proves
      exactly that pass's obligation.
    """
    shifts = dict(shifts or {})
    commuted = set(commuted)
    lines = ["        SUBQ   r0, r0, r0      % digest := 0"]
    for k in range(passes):
        shift = shifts.get(k, 7)
        address = "r4, r1, r5" if k in commuted else "r1, r4, r5"
        lines += [
            "        SUBQ   r4, r4, r4      % i := 0",
            f"        BR     check{k}",
            f"loop{k}: ADDQ   {address}",
            "        LDQ    r5, 0(r5)",
            "        MULQ   r5, 3, r6",
            "        XOR    r0, r6, r0",
            f"        SLL    r5, {shift}, r6",
            "        ADDQ   r0, r6, r0",
            "        ADDQ   r4, 8, r4",
            f"check{k}: CMPULT r4, r2, r5",
            f"        BNE    r5, loop{k}",
        ]
    lines.append("        RET")
    return "\n".join(lines) + "\n"


def multipass_invariants(passes: int) -> dict[int, Formula]:
    """One :func:`checksum_invariant` per pass, keyed by its cut pc."""
    return {pc: checksum_invariant() for pc in multipass_cut_points(passes)}
