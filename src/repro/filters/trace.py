"""Synthetic packet-trace generation.

The paper measures against "a 200,000-packet trace from a busy Ethernet
network at Carnegie Mellon University".  That trace is long gone, so we
generate a seeded synthetic mix with the same structural properties the
filters care about: a majority of IP traffic with a spread of TCP/UDP
ports, some ARP, some other ethertypes, realistic frame sizes, and source
/destination addresses drawn partly from the two "interesting" networks
the filters match on.  The default mix keeps each filter's acceptance rate
in a plausible range (a few percent to ~75%), which is what drives the
relative per-packet costs in Figure 8.

Everything is parameterized and the seed is fixed by default, so benchmark
runs are reproducible; the benchmark reports record the exact mix used.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.filters.packets import (
    MAX_FRAME,
    adversarial_ihl_frame,
    make_arp_packet,
    make_ethernet,
    make_tcp_packet,
    make_udp_packet,
    oversize_frame,
    truncate_frame,
)

#: The two networks Filters 2 and 3 match on (/24s, paper-era CMU space).
NETWORK_A = "128.2.206"
NETWORK_B = "128.2.220"
OTHER_NETWORKS = ("128.2.10", "192.168.1", "10.1.4", "128.237.3")

#: Filter 4's destination port (SMTP, a plausible mid-90s monitor target).
TARGET_PORT = 25
OTHER_PORTS = (20, 23, 53, 79, 80, 111, 119, 513, 6000)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for the synthetic trace; defaults mirror a busy LAN."""

    packets: int = 200_000
    seed: int = 19961028          # OSDI '96 opening day
    ip_fraction: float = 0.78
    arp_fraction: float = 0.06    # remainder is other ethertypes
    tcp_fraction: float = 0.70    # of IP traffic
    target_port_fraction: float = 0.12   # of TCP traffic
    network_a_fraction: float = 0.35     # of IP/ARP sources
    network_b_fraction: float = 0.25     # of IP/ARP destinations
    ip_options_fraction: float = 0.08    # IP packets with options (IHL > 5)
    payload_sizes: tuple[int, ...] = (0, 16, 64, 200, 512, 1024, 1400)


def _address(rng: random.Random, network_fraction: float,
             network: str) -> str:
    if rng.random() < network_fraction:
        return f"{network}.{rng.randrange(1, 255)}"
    other = rng.choice(OTHER_NETWORKS)
    return f"{other}.{rng.randrange(1, 255)}"


def generate_packet(rng: random.Random, config: TraceConfig) -> bytes:
    """One random frame under the configured mix."""
    kind = rng.random()
    payload = b"\x00" * rng.choice(config.payload_sizes)

    if kind < config.ip_fraction:
        src = _address(rng, config.network_a_fraction, NETWORK_A)
        dst = _address(rng, config.network_b_fraction, NETWORK_B)
        options = b""
        if rng.random() < config.ip_options_fraction:
            options = b"\x01" * (4 * rng.randrange(1, 6))  # NOP options
        if rng.random() < config.tcp_fraction:
            if rng.random() < config.target_port_fraction:
                dst_port = TARGET_PORT
            else:
                dst_port = rng.choice(OTHER_PORTS)
            return make_tcp_packet(src, dst, rng.randrange(1024, 65536),
                                   dst_port, payload, options)
        return make_udp_packet(src, dst, rng.randrange(1024, 65536),
                               rng.choice(OTHER_PORTS), payload)

    if kind < config.ip_fraction + config.arp_fraction:
        sender = _address(rng, config.network_a_fraction, NETWORK_A)
        target = _address(rng, config.network_b_fraction, NETWORK_B)
        return make_arp_packet(sender, target,
                               oper=rng.choice((1, 2)))

    # Other ethertypes: 802.1Q, IPX, AppleTalk, LOOP...
    ethertype = rng.choice((0x8100, 0x8137, 0x809B, 0x9000, 0x0842))
    return make_ethernet(ethertype, payload)


def generate_trace(config: TraceConfig | None = None) -> list[bytes]:
    """The full synthetic trace (a list of frames)."""
    config = config or TraceConfig()
    rng = random.Random(config.seed)
    return [generate_packet(rng, config) for __ in range(config.packets)]


# -- KV workload traces ------------------------------------------------


@dataclass(frozen=True)
class KvTraceConfig:
    """Knobs for the key-value workload traces.

    ``hosts`` distinct source addresses are ranked by popularity and
    sampled from a Zipf distribution with exponent ``zipf_s`` — the
    heavy-tailed key-popularity law real caches see: a handful of hot
    keys dominate while a long tail keeps churning the table.
    ``network_a_fraction`` of the hosts live in network A (the flows
    the NAT rewriter translates).
    """

    packets: int = 200_000
    seed: int = 19961028
    hosts: int = 64
    zipf_s: float = 1.1
    network_a_fraction: float = 0.6
    ip_fraction: float = 0.9      # remainder is ARP/other ethertypes
    payload_sizes: tuple[int, ...] = (0, 16, 64, 200, 512, 1024, 1400)


def _kv_hosts(rng: random.Random, config: KvTraceConfig) -> list[str]:
    """The ranked host population (popularity rank 1 first)."""
    hosts: list[str] = []
    seen: set[str] = set()
    while len(hosts) < config.hosts:
        if rng.random() < config.network_a_fraction:
            network = NETWORK_A
        else:
            network = rng.choice(OTHER_NETWORKS)
        host = f"{network}.{rng.randrange(1, 255)}"
        if host not in seen:
            seen.add(host)
            hosts.append(host)
    return hosts


def generate_kv_trace(config: KvTraceConfig | None = None) -> list[bytes]:
    """A seeded trace whose source IPs follow a Zipf popularity law.

    This is the KV family's steady-state workload: repeated hot keys
    exercise the hit/refresh path, the tail exercises insertion and —
    once the 16-slot table fills — the full-scan miss path and TTL
    turnover.
    """
    config = config or KvTraceConfig()
    rng = random.Random(config.seed)
    hosts = _kv_hosts(rng, config)
    weights = [1.0 / (rank ** config.zipf_s)
               for rank in range(1, len(hosts) + 1)]
    sources = rng.choices(hosts, weights=weights, k=config.packets)
    frames: list[bytes] = []
    for src in sources:
        payload = b"\x00" * rng.choice(config.payload_sizes)
        if rng.random() < config.ip_fraction:
            dst = f"{NETWORK_B}.{rng.randrange(1, 255)}"
            frames.append(make_tcp_packet(
                src, dst, rng.randrange(1024, 65536),
                rng.choice(OTHER_PORTS), payload))
        else:
            frames.append(make_arp_packet(
                src, f"{NETWORK_B}.{rng.randrange(1, 255)}",
                oper=rng.choice((1, 2))))
    return frames


def generate_adversarial_trace(packets: int = 10_000,
                               seed: int = 19961028) -> list[bytes]:
    """A seeded hostile mix aimed at the write-capable extensions.

    Alongside ordinary traffic: minimum- and maximum-size frames,
    truncated and oversized frames (the invocation contract must shed
    them), adversarial IHL headers, all-ones and all-zeros frames,
    zero source addresses (the KV key edge case), and frames that spoof
    the NAT translation address itself.  Every generated frame is a
    function of the seed alone.
    """
    rng = random.Random(seed)
    base = KvTraceConfig(packets=1, seed=0)  # reuse the payload mix
    frames: list[bytes] = []
    for __ in range(packets):
        roll = rng.random()
        payload = b"\x00" * rng.choice(base.payload_sizes)
        src = f"{NETWORK_A}.{rng.randrange(1, 255)}"
        dst = f"{NETWORK_B}.{rng.randrange(1, 255)}"
        frame = make_tcp_packet(src, dst, rng.randrange(1024, 65536),
                                rng.choice(OTHER_PORTS), payload)
        if roll < 0.10:
            frame = truncate_frame(frame, rng.randrange(1, 64))
        elif roll < 0.20:
            frame = oversize_frame(frame, MAX_FRAME + rng.randrange(1, 512))
        elif roll < 0.30:
            frame = adversarial_ihl_frame(frame,
                                          ihl_words=rng.randrange(11, 16))
        elif roll < 0.38:
            frame = bytes(rng.randrange(64, MAX_FRAME + 1))  # all zeros
        elif roll < 0.46:
            frame = b"\xff" * rng.randrange(64, MAX_FRAME + 1)
        elif roll < 0.54:
            frame = make_tcp_packet("0.0.0.0", dst, 1024, 80, payload)
        elif roll < 0.62:
            # spoof the NAT translation source address
            frame = make_tcp_packet("128.2.220.1", dst, 1024, 80, payload)
        elif roll < 0.70:
            frame = rng.randbytes(rng.randrange(64, 256))
        frames.append(frame)
    return frames


def replay_trace(trace: list[bytes], repeats: int = 1):
    """Yield ``trace`` end to end ``repeats`` times.

    The dispatch runtime (:mod:`repro.runtime`) takes any iterable of
    frames; replaying a captured trace several times is how the paper's
    "busy Ethernet network" workload is stretched into sustained load
    without regenerating (or holding) more frames than one trace's
    worth.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    for __ in range(repeats):
        yield from trace
