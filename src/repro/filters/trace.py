"""Synthetic packet-trace generation.

The paper measures against "a 200,000-packet trace from a busy Ethernet
network at Carnegie Mellon University".  That trace is long gone, so we
generate a seeded synthetic mix with the same structural properties the
filters care about: a majority of IP traffic with a spread of TCP/UDP
ports, some ARP, some other ethertypes, realistic frame sizes, and source
/destination addresses drawn partly from the two "interesting" networks
the filters match on.  The default mix keeps each filter's acceptance rate
in a plausible range (a few percent to ~75%), which is what drives the
relative per-packet costs in Figure 8.

Everything is parameterized and the seed is fixed by default, so benchmark
runs are reproducible; the benchmark reports record the exact mix used.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.filters.packets import (
    make_arp_packet,
    make_ethernet,
    make_tcp_packet,
    make_udp_packet,
)

#: The two networks Filters 2 and 3 match on (/24s, paper-era CMU space).
NETWORK_A = "128.2.206"
NETWORK_B = "128.2.220"
OTHER_NETWORKS = ("128.2.10", "192.168.1", "10.1.4", "128.237.3")

#: Filter 4's destination port (SMTP, a plausible mid-90s monitor target).
TARGET_PORT = 25
OTHER_PORTS = (20, 23, 53, 79, 80, 111, 119, 513, 6000)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for the synthetic trace; defaults mirror a busy LAN."""

    packets: int = 200_000
    seed: int = 19961028          # OSDI '96 opening day
    ip_fraction: float = 0.78
    arp_fraction: float = 0.06    # remainder is other ethertypes
    tcp_fraction: float = 0.70    # of IP traffic
    target_port_fraction: float = 0.12   # of TCP traffic
    network_a_fraction: float = 0.35     # of IP/ARP sources
    network_b_fraction: float = 0.25     # of IP/ARP destinations
    ip_options_fraction: float = 0.08    # IP packets with options (IHL > 5)
    payload_sizes: tuple[int, ...] = (0, 16, 64, 200, 512, 1024, 1400)


def _address(rng: random.Random, network_fraction: float,
             network: str) -> str:
    if rng.random() < network_fraction:
        return f"{network}.{rng.randrange(1, 255)}"
    other = rng.choice(OTHER_NETWORKS)
    return f"{other}.{rng.randrange(1, 255)}"


def generate_packet(rng: random.Random, config: TraceConfig) -> bytes:
    """One random frame under the configured mix."""
    kind = rng.random()
    payload = b"\x00" * rng.choice(config.payload_sizes)

    if kind < config.ip_fraction:
        src = _address(rng, config.network_a_fraction, NETWORK_A)
        dst = _address(rng, config.network_b_fraction, NETWORK_B)
        options = b""
        if rng.random() < config.ip_options_fraction:
            options = b"\x01" * (4 * rng.randrange(1, 6))  # NOP options
        if rng.random() < config.tcp_fraction:
            if rng.random() < config.target_port_fraction:
                dst_port = TARGET_PORT
            else:
                dst_port = rng.choice(OTHER_PORTS)
            return make_tcp_packet(src, dst, rng.randrange(1024, 65536),
                                   dst_port, payload, options)
        return make_udp_packet(src, dst, rng.randrange(1024, 65536),
                               rng.choice(OTHER_PORTS), payload)

    if kind < config.ip_fraction + config.arp_fraction:
        sender = _address(rng, config.network_a_fraction, NETWORK_A)
        target = _address(rng, config.network_b_fraction, NETWORK_B)
        return make_arp_packet(sender, target,
                               oper=rng.choice((1, 2)))

    # Other ethertypes: 802.1Q, IPX, AppleTalk, LOOP...
    ethertype = rng.choice((0x8100, 0x8137, 0x809B, 0x9000, 0x0842))
    return make_ethernet(ethertype, payload)


def generate_trace(config: TraceConfig | None = None) -> list[bytes]:
    """The full synthetic trace (a list of frames)."""
    config = config or TraceConfig()
    rng = random.Random(config.seed)
    return [generate_packet(rng, config) for __ in range(config.packets)]


def replay_trace(trace: list[bytes], repeats: int = 1):
    """Yield ``trace`` end to end ``repeats`` times.

    The dispatch runtime (:mod:`repro.runtime`) takes any iterable of
    frames; replaying a captured trace several times is how the paper's
    "busy Ethernet network" workload is stretched into sustained load
    without regenerating (or holding) more frames than one trace's
    worth.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    for __ in range(repeats):
        yield from trace
