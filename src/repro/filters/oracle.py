"""Reference implementations of the four filters, in plain Python.

Each oracle reproduces the *exact* semantics of the corresponding Alpha
filter — including the little-endian extraction and the padded-word read
at the packet boundary in Filter 4 — so that every implementation (PCC
native, BPF, SFI, M3) can be cross-checked packet by packet.  The oracles
are intentionally written against the raw frame bytes, independently of
:mod:`repro.filters.packets`' builders, so builder bugs cannot hide.
"""

from __future__ import annotations

from typing import Callable

from repro.filters.programs import (
    ETHERTYPE_ARP_LE,
    ETHERTYPE_IP_LE,
    NETWORK_A_LE,
    NETWORK_B_LE,
    TARGET_PORT_LE,
)

Oracle = Callable[[bytes], bool]


def _pad8(frame: bytes) -> bytes:
    remainder = len(frame) % 8
    if remainder:
        return frame + b"\x00" * (8 - remainder)
    return frame


def _le16(frame: bytes, offset: int) -> int:
    return frame[offset] | (frame[offset + 1] << 8)


def _le24(frame: bytes, offset: int) -> int:
    return (frame[offset] | (frame[offset + 1] << 8)
            | (frame[offset + 2] << 16))


def oracle1(frame: bytes) -> bool:
    """Accept all IP packets."""
    return _le16(frame, 12) == ETHERTYPE_IP_LE


def oracle2(frame: bytes) -> bool:
    """Accept IP packets from network A."""
    if _le16(frame, 12) != ETHERTYPE_IP_LE:
        return False
    return _le24(frame, 26) == NETWORK_A_LE


def oracle3(frame: bytes) -> bool:
    """Accept IP or ARP packets exchanged between networks A and B."""
    ethertype = _le16(frame, 12)
    if ethertype == ETHERTYPE_IP_LE:
        src = _le24(frame, 26)
        dst = _le24(frame, 30)
    elif ethertype == ETHERTYPE_ARP_LE:
        src = _le24(frame, 28)
        dst = _le24(frame, 38)
    else:
        return False
    forward = src == NETWORK_A_LE and dst == NETWORK_B_LE
    backward = src == NETWORK_B_LE and dst == NETWORK_A_LE
    return forward or backward


def oracle4(frame: bytes) -> bool:
    """Accept TCP packets with destination port 25, replicating the
    filter's word-aligned, bounds-checked port read."""
    if _le16(frame, 12) != ETHERTYPE_IP_LE:
        return False
    if frame[23] != 6:  # IP protocol byte
        return False
    port_offset = (frame[14] & 0x0F) * 4 + 16
    word_offset = port_offset & ~7
    if not word_offset < len(frame):
        return False
    padded = _pad8(frame)
    return _le16(padded, port_offset) == TARGET_PORT_LE


ORACLES: dict[str, Oracle] = {
    "filter1": oracle1,
    "filter2": oracle2,
    "filter3": oracle3,
    "filter4": oracle4,
}
