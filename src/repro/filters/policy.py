r"""The packet-filter safety policy (paper §3).

The interface follows the BPF model the paper adopts: the kernel invokes
the filter with the aligned packet address in ``r1``, the packet length in
``r2`` (at least 64, the Ethernet minimum), and the address of a 16-byte
aligned scratch memory in ``r3``; the boolean verdict is returned in
``r0``.  The precondition is the paper's, transcribed conjunct for
conjunct::

    Pre = r1 mod 2^64 = r1
        /\ r2 mod 2^64 = r2 /\ r2 < 2^63 /\ r2 >= 64
        /\ r3 mod 2^64 = r3
        /\ ALL i. (i >= 0 /\ i < r2 /\ i & 7 = 0) => rd(r1 (+) i)
        /\ ALL j. (j >= 0 /\ j < 16 /\ j & 7 = 0) => rd(r3 (+) j)
        /\ ALL j. (j >= 0 /\ j < 16 /\ j & 7 = 0) => wr(r3 (+) j)
        /\ ALL i. ALL j. (i >= 0 /\ i < r2 /\ j >= 0 /\ j < 16)
                              => r1 (+) i != r3 (+) j

One transcription note: the paper defines ``wr(a)`` as "an aligned location
that can be safely read **or written**", i.e. writability implies
readability; since our logic keeps ``rd`` and ``wr`` independent, the
scratch-read conjunct is spelled out explicitly.

The policy's *semantic* interpretation (used by the abstract machine and
the tests, never by validation) reads words only inside the packet or the
scratch area and writes only the scratch area.  Packet buffers are mapped
zero-padded to an 8-byte boundary so that the word read at any aligned
``i < r2`` — which the policy permits — stays inside the mapped region,
mirroring how a kernel pads receive buffers.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.alpha.machine import Memory
from repro.logic.formulas import Formula, Forall, Implies, conj, eq, ge, lt, ne, rd, wr
from repro.logic.terms import Var, add64, and64
from repro.vcgen.policy import SafetyPolicy, word_identity

#: Where the kernel maps things for filter invocation (arbitrary, aligned).
PACKET_BASE = 0x0001_0000
SCRATCH_BASE = 0x0002_0000
SCRATCH_SIZE = 16

_SIGN_BOUND = 1 << 63


def _aligned_index_guard(var: str, bound) -> Formula:
    index = Var(var)
    return conj([ge(index, 0), lt(index, bound),
                 eq(and64(index, 7), 0)])


def packet_filter_precondition() -> Formula:
    """The §3 precondition, as a formula."""
    r1, r2, r3 = Var("r1"), Var("r2"), Var("r3")
    i, j = Var("i"), Var("j")
    readable_packet = Forall(
        "i", Implies(_aligned_index_guard("i", r2), rd(add64(r1, i))))
    readable_scratch = Forall(
        "j", Implies(_aligned_index_guard("j", 16), rd(add64(r3, j))))
    writable_scratch = Forall(
        "j", Implies(_aligned_index_guard("j", 16), wr(add64(r3, j))))
    no_alias = Forall("i", Forall("j", Implies(
        conj([ge(i, 0), lt(i, r2), ge(j, 0), lt(j, 16)]),
        ne(add64(r1, i), add64(r3, j)))))
    return conj([
        word_identity(r1),
        word_identity(r2),
        lt(r2, _SIGN_BOUND),
        ge(r2, 64),
        word_identity(r3),
        readable_packet,
        readable_scratch,
        writable_scratch,
        no_alias,
    ])


def packet_filter_policy() -> SafetyPolicy:
    """The published packet-filter policy (BPF-equivalent safety model)."""

    def make_checkers(registers: Mapping[int, int],
                      read_word: Callable[[int], int]):
        base = registers[1]
        length = registers[2]
        scratch = registers[3]

        def can_read(address: int) -> bool:
            if base <= address < base + length:
                return True
            return scratch <= address < scratch + SCRATCH_SIZE

        def can_write(address: int) -> bool:
            return scratch <= address < scratch + SCRATCH_SIZE

        return can_read, can_write

    return SafetyPolicy(
        name="packet-filter",
        precondition=packet_filter_precondition(),
        make_checkers=make_checkers,
    )


def _pad8(data: bytes) -> bytes:
    remainder = len(data) % 8
    if remainder:
        return data + b"\x00" * (8 - remainder)
    return data


def packet_memory(packet: bytes,
                  packet_base: int = PACKET_BASE,
                  scratch_base: int = SCRATCH_BASE) -> Memory:
    """Kernel-side memory for one filter invocation.

    The packet is mapped read-only (the policy forbids packet writes) and
    zero-padded to an 8-byte boundary; the scratch area is writable and
    zeroed per invocation, as BPF specifies.
    """
    memory = Memory()
    memory.map_region(packet_base, _pad8(packet), writable=False,
                      name="packet")
    memory.map_region(scratch_base, bytes(SCRATCH_SIZE), writable=True,
                      name="scratch")
    return memory


def reusable_packet_memory(packet_base: int = PACKET_BASE,
                           scratch_base: int = SCRATCH_BASE,
                           ):
    """One kernel-side :class:`Memory` reused across a whole trace.

    Returns ``(memory, rebind)``: calling ``rebind(packet)`` swaps the
    packet region's bytes in place and re-zeroes the scratch area,
    producing exactly the state :func:`packet_memory` would build fresh —
    the way a kernel reuses one receive buffer rather than remapping
    pages per frame.  The perf harness pairs this with a long-lived
    execution engine so the per-packet path allocates almost nothing.
    """
    memory = Memory()
    memory.map_region(packet_base, bytes(8), writable=False, name="packet")
    memory.map_region(scratch_base, bytes(SCRATCH_SIZE), writable=True,
                      name="scratch")
    scratch = memory.region("scratch")
    zero_scratch = bytes(SCRATCH_SIZE)
    rebind_region = memory.rebind_region

    def rebind(packet: bytes) -> None:
        remainder = len(packet) % 8
        if remainder:
            rebind_region("packet", packet + b"\x00" * (8 - remainder))
        else:
            rebind_region("packet", packet)
        scratch[:] = zero_scratch

    return memory, rebind


def filter_registers(packet_length: int,
                     packet_base: int = PACKET_BASE,
                     scratch_base: int = SCRATCH_BASE) -> dict[int, int]:
    """Entry register file for a filter invocation (r1, r2, r3)."""
    return {1: packet_base, 2: packet_length, 3: scratch_base}
