"""The four packet filters, hand-coded in DEC Alpha assembly (paper §3).

The filters use the paper's optimizations verbatim:

* the number of memory operations is minimized by 64-bit loads followed by
  byte extraction (EXTBL/EXTWL/EXTLL);
* Filter 4 computes the TCP destination-port offset as
  ``((w8 >> 46) & 60) + 16`` — exactly the simplification derived in §3 —
  then masks it to an aligned word offset and bounds-checks it against the
  packet length before the (certifiably safe) load;
* constants that do not fit the 8-bit operate literal are synthesized with
  the ``SUBQ r,r,r`` zero idiom plus LDAH/LDA, since the policy's register
  file has no hardwired zero.

Byte-order note: the Alpha is little-endian and Ethernet/IP are
big-endian, so extracted fields compare against byte-swapped constants
(e.g. ethertype 0x0800 extracts as 0x0008, port 25 as 0x1900 = 6400).

Entry convention (the policy's): r1 = packet, r2 = length, r3 = scratch;
verdict in r0 (non-zero accepts).  All branches are forward; none of these
filters needs the scratch memory (same as the paper's four).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alpha.isa import Program
from repro.alpha.parser import parse_program

#: Filter parameters (shared with the trace generator and the oracles).
NETWORK_A_LE = 0xCE0280   # 128.2.206.x as little-endian 24-bit value
NETWORK_B_LE = 0xDC0280   # 128.2.220.x
TARGET_PORT_LE = 0x1900   # TCP port 25, byte-swapped
ETHERTYPE_IP_LE = 0x0008
ETHERTYPE_ARP_LE = 0x0608


@dataclass(frozen=True)
class FilterSpec:
    """One benchmark filter: name, what it accepts, and its source."""

    name: str
    description: str
    source: str

    @property
    def program(self) -> Program:
        return parse_program(self.source)


FILTER1 = FilterSpec(
    name="filter1",
    description="accept all IP packets",
    source="""
        LDQ    r4, 8(r1)       % bytes 8..15 of the frame
        EXTWL  r4, 4, r4       % ethertype (bytes 12-13, little-endian)
        CMPEQ  r4, 8, r0       % 0x0008 == byte-swapped ETHERTYPE_IP
        RET
    """,
)

FILTER2 = FilterSpec(
    name="filter2",
    description="accept IP packets originating from network 128.2.206/24",
    source="""
        LDQ    r4, 8(r1)
        EXTWL  r4, 4, r5       % ethertype
        CMPEQ  r5, 8, r0
        BEQ    r0, out         % not IP: r0 is already 0
        LDQ    r4, 24(r1)      % bytes 24..31
        EXTLL  r4, 2, r4       % source IP (bytes 26-29)
        SLL    r4, 40, r4
        SRL    r4, 40, r4      % keep the first three octets
        SUBQ   r5, r5, r5
        LDAH   r5, 206(r5)
        LDA    r5, 640(r5)     % 128.2.206/24, byte-swapped: 0xCE0280
        CMPEQ  r4, r5, r0
out:    RET
    """,
)

FILTER3 = FilterSpec(
    name="filter3",
    description=("accept IP or ARP packets exchanged between networks "
                 "128.2.206/24 and 128.2.220/24"),
    source="""
        LDQ    r4, 8(r1)
        EXTWL  r4, 4, r5       % ethertype
        CMPEQ  r5, 8, r6
        BNE    r6, ip
        LDA    r7, 1544(r6)    % r6 is 0 here; 1544 = byte-swapped ARP
        CMPEQ  r5, r7, r6
        BNE    r6, arp
        SUBQ   r0, r0, r0      % neither IP nor ARP
        RET
ip:     LDQ    r4, 24(r1)      % bytes 24..31
        EXTLL  r4, 2, r5       % source IP (26-29)
        SLL    r5, 40, r5
        SRL    r5, 40, r5      % source network
        EXTWL  r4, 6, r6       % destination IP bytes 30-31
        LDQ    r7, 32(r1)
        EXTBL  r7, 0, r7       % destination IP byte 32
        SLL    r7, 16, r7
        BIS    r6, r7, r6      % destination network
        BR     match
arp:    LDQ    r4, 24(r1)
        EXTLL  r4, 4, r5       % sender IP (bytes 28-31)
        SLL    r5, 40, r5
        SRL    r5, 40, r5      % sender network
        LDQ    r6, 32(r1)
        EXTWL  r6, 6, r6       % target IP bytes 38-39
        LDQ    r7, 40(r1)
        EXTBL  r7, 0, r7       % target IP byte 40
        SLL    r7, 16, r7
        BIS    r6, r7, r6      % target network
match:  SUBQ   r7, r7, r7
        LDAH   r7, 206(r7)
        LDA    r7, 640(r7)     % network A
        CMPEQ  r5, r7, r4      % src in A
        CMPEQ  r6, r7, r0      % dst in A
        SUBQ   r7, r7, r7
        LDAH   r7, 220(r7)
        LDA    r7, 640(r7)     % network B
        CMPEQ  r5, r7, r5      % src in B
        CMPEQ  r6, r7, r6      % dst in B
        AND    r4, r6, r4      % A -> B
        AND    r5, r0, r5      % B -> A
        BIS    r4, r5, r0
        RET
    """,
)

FILTER4 = FilterSpec(
    name="filter4",
    description="accept TCP packets with destination port 25",
    source="""
        LDQ    r4, 8(r1)       % w8: bytes 8..15
        EXTWL  r4, 4, r5       % ethertype
        CMPEQ  r5, 8, r0
        BEQ    r0, out         % not IP
        LDQ    r5, 16(r1)      % bytes 16..23
        EXTBL  r5, 7, r5       % byte 23: IP protocol
        CMPEQ  r5, 6, r0
        BEQ    r0, out         % not TCP
        SRL    r4, 46, r5
        AND    r5, 60, r5      % IHL * 4
        ADDQ   r5, 16, r5      % port offset = IHL*4 + 16  (paper's formula)
        AND    r5, 248, r6     % containing word offset (aligned)
        CMPULT r6, r2, r7      % in bounds?
        SUBQ   r0, r0, r0      % default verdict: reject
        BEQ    r7, out
        ADDQ   r1, r6, r6
        LDQ    r4, 0(r6)       % the word holding the port
        EXTWL  r4, r5, r4      % port halfword at offset (port_off & 7)
        SUBQ   r7, r7, r7
        LDA    r7, 6400(r7)    % port 25, byte-swapped
        CMPEQ  r4, r7, r0
out:    RET
    """,
)

#: The benchmark set, in the paper's order.
FILTERS: tuple[FilterSpec, ...] = (FILTER1, FILTER2, FILTER3, FILTER4)

#: A fifth filter used by tests and examples: exercises the scratch
#: memory (counts accepted IP packets across invocations), which none of
#: the paper's four filters needs.
SCRATCH_COUNTER = FilterSpec(
    name="scratch-counter",
    description="accept IP packets, counting acceptances in scratch[0]",
    source="""
        LDQ    r4, 8(r1)
        EXTWL  r4, 4, r4
        CMPEQ  r4, 8, r0
        BEQ    r0, out
        LDQ    r5, 0(r3)       % scratch word 0: running count
        ADDQ   r5, 1, r5
        STQ    r5, 0(r3)
out:    RET
    """,
)
