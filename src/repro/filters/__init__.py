"""Network packet filters — the paper's application domain (§3).

* :mod:`repro.filters.packets` — Ethernet/ARP/IPv4/TCP/UDP packet
  synthesis and parsing (the substrate the paper gets from the network);
* :mod:`repro.filters.trace` — a seeded synthetic trace generator standing
  in for the paper's 200,000-packet CMU Ethernet trace;
* :mod:`repro.filters.policy` — the packet-filter safety policy of §3
  (precondition over packet pointer, length, and scratch memory);
* :mod:`repro.filters.programs` — the four filters, hand-coded in Alpha
  assembly with the paper's optimizations (64-bit loads + byte extraction,
  the ``((w >> 46) & 60) + 16`` TCP-port offset computation);
* :mod:`repro.filters.oracle` — straightforward Python reference
  implementations used to cross-check every filter implementation
  (PCC, BPF, SFI, M3) on every packet;
* :mod:`repro.filters.checksum` — the §4 IP-header checksum experiment:
  a looping routine certified with an explicit loop invariant;
* :mod:`repro.filters.kv` — the write-capable family (KV table, NAT
  rewriter, load balancer): store-bearing programs certified under a
  §2-style read/write policy, with loop invariants per table scan and
  pure-Python oracles for verdicts *and* post-state.
"""

from repro.filters.packets import (
    ETHERTYPE_IP,
    ETHERTYPE_ARP,
    PROTO_TCP,
    PROTO_UDP,
    make_ethernet,
    make_ip_packet,
    make_arp_packet,
    make_tcp_packet,
    make_udp_packet,
)
from repro.filters.trace import (
    KvTraceConfig,
    TraceConfig,
    generate_adversarial_trace,
    generate_kv_trace,
    generate_trace,
)
from repro.filters.kv import (
    KV_PROGRAMS,
    KvSpec,
    kv_packet_policy,
    kv_registers,
    reusable_kv_memory,
)
from repro.filters.policy import (
    PACKET_BASE,
    SCRATCH_BASE,
    SCRATCH_SIZE,
    packet_filter_policy,
    packet_memory,
    filter_registers,
)
from repro.filters.programs import FILTERS, FilterSpec
from repro.filters.oracle import ORACLES

__all__ = [
    "ETHERTYPE_IP",
    "ETHERTYPE_ARP",
    "PROTO_TCP",
    "PROTO_UDP",
    "make_ethernet",
    "make_ip_packet",
    "make_arp_packet",
    "make_tcp_packet",
    "make_udp_packet",
    "TraceConfig",
    "KvTraceConfig",
    "generate_trace",
    "generate_kv_trace",
    "generate_adversarial_trace",
    "KV_PROGRAMS",
    "KvSpec",
    "kv_packet_policy",
    "kv_registers",
    "reusable_kv_memory",
    "PACKET_BASE",
    "SCRATCH_BASE",
    "SCRATCH_SIZE",
    "packet_filter_policy",
    "packet_memory",
    "filter_registers",
    "FILTERS",
    "FilterSpec",
    "ORACLES",
]
