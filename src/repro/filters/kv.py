r"""The store-bearing extension family: KV table, NAT, load balancer.

The paper's four packet filters never execute an STQ, so the ``wr``
half of the §2 resource-access discipline — and the loop-invariant
machinery that makes bounded table scans certifiable — is barely
exercised end to end.  This module adds a second, *write-capable*
family of kernel extensions over the same invocation convention:

* ``kv-insert`` — bounded-table key-value insert/refresh: the source
  IP is the key, the slot scan is a certified loop, a hit or a free
  slot gets the key with a fresh TTL;
* ``kv-evict`` — the TTL sweep: every occupied slot ages by one tick,
  expired slots are cleared; the verdict counts evictions;
* ``nat-rewrite`` — a NAT address rewriter: flows from network A are
  recorded in the table and their source IP is rewritten *in the
  packet* to the NAT address, plus a translation counter;
* ``lb-balance`` — a load balancer: two certified scans (min, then
  first-match) pick the least-loaded of four backend counters, bump
  it, and rewrite the destination host octet in the packet.

All four mutate memory under :func:`kv_packet_policy`, a §2-style
read/write policy: the packet (``r1``, length ``r2``) is readable *and
writable*, and a 160-byte state area (``r3``) — 16 table slots, a
reserved cursor word, and a stats word — is readable and writable.
Unlike the BPF scratch, the state area is **persistent across
invocations** (see :func:`reusable_kv_memory`): that is what makes the
table a table.

Each program carries one loop invariant per table-scan loop
(:func:`kv_invariant`), exactly the §4 discipline: the invariant names
the scan offset's word-identity, 8-byte alignment, and strict bound,
and re-asserts the policy's readable/writable regions so the acyclic
fragments downstream of the cut point can discharge their ``rd``/``wr``
obligations.

Slot layout (one 8-byte word): key in the low 32 bits (the source IP,
little-endian), TTL in the high 32 bits.  A zero word is a free slot.

Every program has a pure-Python oracle (:data:`ORACLES`) replicating
the Alpha semantics bit for bit over ``(state, frame)`` — used by the
differential tests and the benchmark for verdict *and* post-state
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.alpha.isa import Br, Branch, Program, branch_target
from repro.alpha.machine import Memory
from repro.alpha.parser import parse_program
from repro.filters.policy import PACKET_BASE
from repro.logic.formulas import (
    Forall,
    Formula,
    Implies,
    conj,
    eq,
    ge,
    lt,
    ne,
    rd,
    wr,
)
from repro.logic.terms import Var, add64, and64, mod64
from repro.vcgen.policy import SafetyPolicy, word_identity

#: Where the kernel maps the persistent state area (aligned, disjoint
#: from the packet at 0x10000 and the BPF scratch at 0x20000).
KV_STATE_BASE = 0x0003_0000

#: State layout: 16 table slots, a reserved cursor word, a stats word,
#: and two spare words — 20 words, 160 bytes.
SLOT_BYTES = 8
TABLE_SLOTS = 16
TABLE_BYTES = TABLE_SLOTS * SLOT_BYTES       # 128, fits an operate literal
COUNT_OFFSET = 136                           # NAT translation counter
STATE_SIZE = 160
STATE_WORDS = STATE_SIZE // 8

#: TTL ticks a fresh or refreshed entry lives for.
TTL_INIT = 8

#: The load balancer's four backend counters live in the first four
#: state words; chosen backends get host octet 100 + index.
BACKEND_SLOTS = 4
BACKEND_TABLE_BYTES = BACKEND_SLOTS * SLOT_BYTES   # 32
BACKEND_OCTET_BASE = 100

#: The NAT translation address, 128.2.220.1, as the little-endian 32-bit
#: value the rewriter splices into the source-IP lane.
NAT_IP_LE = 0x01DC0280

_SIGN_BOUND = 1 << 63
_WORD_MASK = (1 << 64) - 1


# -- the read/write resource policy -----------------------------------


def _aligned_index_guard(var: str, bound) -> Formula:
    index = Var(var)
    return conj([ge(index, 0), lt(index, bound),
                 eq(and64(index, 7), 0)])


def _region_conjuncts(base: Var, bound) -> tuple[Formula, Formula]:
    """``(readable, writable)`` quantified conjuncts for one region."""
    index = Var("i")
    guard = _aligned_index_guard("i", bound)
    return (Forall("i", Implies(guard, rd(add64(base, index)))),
            Forall("i", Implies(guard, wr(add64(base, index)))))


def kv_precondition() -> Formula:
    """The §2-style read/write precondition.

    ``r1`` = packet (readable *and* writable, aligned words below the
    length ``r2``), ``r3`` = the 160-byte persistent state area
    (readable and writable), regions disjoint.
    """
    r1, r2, r3 = Var("r1"), Var("r2"), Var("r3")
    i, j = Var("i"), Var("j")
    readable_packet, writable_packet = _region_conjuncts(r1, r2)
    readable_state, writable_state = _region_conjuncts(r3, STATE_SIZE)
    no_alias = Forall("i", Forall("j", Implies(
        conj([ge(i, 0), lt(i, r2), ge(j, 0), lt(j, STATE_SIZE)]),
        ne(add64(r1, i), add64(r3, j)))))
    return conj([
        word_identity(r1),
        word_identity(r2),
        lt(r2, _SIGN_BOUND),
        ge(r2, 64),
        word_identity(r3),
        readable_packet,
        writable_packet,
        readable_state,
        writable_state,
        no_alias,
    ])


def kv_packet_policy() -> SafetyPolicy:
    """The write-capable packet policy the KV family is certified under."""

    def make_checkers(registers: Mapping[int, int],
                      read_word: Callable[[int], int]):
        base = registers[1]
        length = registers[2]
        state = registers[3]

        def allowed(address: int) -> bool:
            if base <= address < base + length:
                return True
            return state <= address < state + STATE_SIZE

        return allowed, allowed

    return SafetyPolicy(
        name="kv-packet",
        precondition=kv_precondition(),
        make_checkers=make_checkers,
    )


def kv_invariant(bound: int = TABLE_BYTES) -> Formula:
    """The table-scan loop invariant at a backward-branch target.

    ``r4`` is the running slot offset: a word value, 8-byte aligned,
    strictly below the scan ``bound`` (established by the ``CMPULT``
    guarding every back edge).  The policy's region facts are carried
    along verbatim — a cut point sees *only* its invariant, and the
    store tails downstream need both the packet and the state
    ``rd``/``wr`` conjuncts (§4: invariants act as the preconditions of
    the acyclic fragments).
    """
    r1, r2, r3, r4 = Var("r1"), Var("r2"), Var("r3"), Var("r4")
    readable_packet, writable_packet = _region_conjuncts(r1, r2)
    readable_state, writable_state = _region_conjuncts(r3, STATE_SIZE)
    return conj([
        word_identity(r1),
        word_identity(r2),
        lt(r2, _SIGN_BOUND),
        ge(r2, 64),
        word_identity(r3),
        word_identity(r4),
        eq(and64(r4, 7), 0),
        lt(mod64(r4), mod64(bound)),
        readable_packet,
        writable_packet,
        readable_state,
        writable_state,
    ])


def loop_cut_points(program: Program) -> tuple[int, ...]:
    """The backward-branch targets of ``program``, in pc order."""
    targets = {branch_target(pc, instruction)
               for pc, instruction in enumerate(program)
               if isinstance(instruction, (Branch, Br))
               and branch_target(pc, instruction) <= pc}
    return tuple(sorted(targets))


# -- the programs ------------------------------------------------------

KV_INSERT_SOURCE = """
        SUBQ   r0, r0, r0      % verdict := 0
        LDQ    r5, 24(r1)      % frame bytes 24..31 hold the src IP
        EXTLL  r5, 2, r6       % key := src IP, little-endian 32 bits
        SUBQ   r7, r7, r7
        LDA    r7, 8(r7)       % TTL_INIT
        SLL    r7, 32, r7
        BIS    r6, r7, r7      % fresh slot word: key | TTL << 32
        SUBQ   r4, r4, r4      % slot offset := 0
        BR     check
loop:   ADDQ   r3, r4, r5
        LDQ    r5, 0(r5)       % current slot word
        EXTLL  r5, 0, r8       % its key field
        CMPEQ  r8, r6, r9
        BNE    r9, store       % hit: refresh the TTL in place
        BNE    r5, next        % occupied by another key: keep scanning
        BR     store           % free slot: insert here
next:   ADDQ   r4, 8, r4
check:  CMPULT r4, 128, r5
        BNE    r5, loop
        RET                    % table full: verdict 0
store:  ADDQ   r3, r4, r5
        STQ    r7, 0(r5)
        SUBQ   r0, r0, r0
        LDA    r0, 1(r0)       % verdict := 1
        RET
"""

KV_EVICT_SOURCE = """
        SUBQ   r0, r0, r0      % evicted := 0
        SUBQ   r7, r7, r7
        LDA    r7, 1(r7)
        SLL    r7, 32, r7      % one TTL tick
        SUBQ   r4, r4, r4
        BR     check
loop:   ADDQ   r3, r4, r5
        LDQ    r6, 0(r5)
        BEQ    r6, next        % free slot
        SRL    r6, 32, r8      % TTL field
        CMPULE r8, 1, r9
        BNE    r9, evict
        SUBQ   r6, r7, r6      % age: TTL -= 1
        STQ    r6, 0(r5)
        BR     next
evict:  SUBQ   r6, r6, r6
        STQ    r6, 0(r5)       % clear the expired slot
        LDA    r0, 1(r0)       % evicted += 1
next:   ADDQ   r4, 8, r4
check:  CMPULT r4, 128, r5
        BNE    r5, loop
        RET
"""

NAT_REWRITE_SOURCE = """
        SUBQ   r0, r0, r0      % verdict := 0
        LDQ    r5, 8(r1)
        EXTWL  r5, 4, r5       % ethertype (bytes 12-13, little-endian)
        CMPEQ  r5, 8, r5       % IPv4?
        BEQ    r5, out
        LDQ    r5, 24(r1)
        EXTLL  r5, 2, r6       % key := src IP (LE32)
        SLL    r6, 40, r7
        SRL    r7, 40, r7      % its network part (LE24)
        SUBQ   r8, r8, r8
        LDAH   r8, 206(r8)
        LDA    r8, 640(r8)     % network A, byte-swapped: 0xCE0280
        CMPEQ  r7, r8, r7
        BEQ    r7, out         % only network-A flows are translated
        SUBQ   r7, r7, r7
        LDA    r7, 8(r7)
        SLL    r7, 32, r7
        BIS    r6, r7, r7      % fresh flow word: key | TTL << 32
        SUBQ   r4, r4, r4
        BR     check
loop:   ADDQ   r3, r4, r5
        LDQ    r5, 0(r5)
        EXTLL  r5, 0, r8
        CMPEQ  r8, r6, r9
        BNE    r9, hit         % known flow
        BNE    r5, next
        BR     hit             % free slot: new flow
next:   ADDQ   r4, 8, r4
check:  CMPULT r4, 128, r5
        BNE    r5, loop
        BR     out             % flow table full: pass untranslated
hit:    ADDQ   r3, r4, r5
        STQ    r7, 0(r5)       % record / refresh the flow
        LDQ    r5, 24(r1)
        SUBQ   r8, r8, r8
        LDA    r8, -1(r8)      % all ones
        EXTLL  r8, 0, r9
        SLL    r9, 16, r9      % the src-IP byte lane of word 24
        XOR    r8, r9, r9      % keep everything outside the lane
        AND    r5, r9, r5
        SUBQ   r8, r8, r8
        LDAH   r8, 476(r8)
        LDA    r8, 640(r8)     % translated source 128.2.220.1 (LE)
        SLL    r8, 16, r8
        BIS    r5, r8, r5
        STQ    r5, 24(r1)      % in-place packet rewrite
        LDQ    r8, 136(r3)
        LDA    r8, 1(r8)
        STQ    r8, 136(r3)     % translation counter
        SUBQ   r0, r0, r0
        LDA    r0, 1(r0)       % verdict := translated
out:    RET
"""

LB_BALANCE_SOURCE = """
        SUBQ   r0, r0, r0      % verdict := 0
        LDQ    r5, 8(r1)
        EXTWL  r5, 4, r5       % ethertype
        CMPEQ  r5, 8, r5
        BEQ    r5, out         % only IP flows are balanced
        LDQ    r7, 0(r3)       % running min := counters[0]
        SUBQ   r4, r4, r4
        LDA    r4, 8(r4)
        BR     chk1
min:    ADDQ   r3, r4, r5      % first scan: least backend load
        LDQ    r5, 0(r5)
        CMPULT r5, r7, r8
        BEQ    r8, skip
        BIS    r5, r5, r7      % new minimum
skip:   ADDQ   r4, 8, r4
chk1:   CMPULT r4, 32, r5
        BNE    r5, min
        SUBQ   r4, r4, r4
        BR     chk2
pick:   ADDQ   r3, r4, r5      % second scan: first counter at the min
        LDQ    r6, 0(r5)
        CMPEQ  r6, r7, r8
        BNE    r8, take
        ADDQ   r4, 8, r4
chk2:   CMPULT r4, 32, r5
        BNE    r5, pick
        BR     out             % unreachable: the minimum is in the table
take:   LDA    r6, 1(r6)
        STQ    r6, 0(r5)       % one more flow on the chosen backend
        SRL    r4, 3, r6
        LDA    r6, 100(r6)     % backend host octet 100 + index
        SLL    r6, 8, r6       % into byte 33's lane of word 32
        LDQ    r5, 32(r1)
        SUBQ   r8, r8, r8
        LDA    r8, 255(r8)
        SLL    r8, 8, r8       % the dst host-octet lane
        SUBQ   r9, r9, r9
        LDA    r9, -1(r9)
        XOR    r9, r8, r8      % everything outside the lane
        AND    r5, r8, r5
        BIS    r5, r6, r5
        STQ    r5, 32(r1)      % in-place packet rewrite
        SUBQ   r0, r0, r0
        LDA    r0, 1(r0)
out:    RET
"""


@dataclass(frozen=True)
class KvSpec:
    """One write-capable workload program.

    ``loop_bound`` is the byte bound of every table-scan loop in the
    program (the literal in its ``CMPULT`` back-edge guards); the
    certification invariants map every backward-branch target to
    :func:`kv_invariant` at that bound.
    """

    name: str
    description: str
    source: str
    loop_bound: int

    @property
    def program(self) -> Program:
        return parse_program(self.source)

    def invariants(self) -> dict[int, Formula]:
        invariant = kv_invariant(self.loop_bound)
        return {pc: invariant for pc in loop_cut_points(self.program)}


KV_INSERT = KvSpec(
    name="kv-insert",
    description="insert/refresh the source IP in the bounded KV table",
    source=KV_INSERT_SOURCE,
    loop_bound=TABLE_BYTES,
)

KV_EVICT = KvSpec(
    name="kv-evict",
    description="age every TTL by one tick, evicting expired slots",
    source=KV_EVICT_SOURCE,
    loop_bound=TABLE_BYTES,
)

NAT_REWRITE = KvSpec(
    name="nat-rewrite",
    description="record network-A flows and NAT their source IP in place",
    source=NAT_REWRITE_SOURCE,
    loop_bound=TABLE_BYTES,
)

LB_BALANCE = KvSpec(
    name="lb-balance",
    description="send IP flows to the least-loaded of four backends",
    source=LB_BALANCE_SOURCE,
    loop_bound=BACKEND_TABLE_BYTES,
)

KV_PROGRAMS: tuple[KvSpec, ...] = (KV_INSERT, KV_EVICT, NAT_REWRITE,
                                   LB_BALANCE)


# -- kernel-side memory ------------------------------------------------


def _pad8(data: bytes) -> bytes:
    remainder = len(data) % 8
    if remainder:
        return data + b"\x00" * (8 - remainder)
    return data


def kv_memory(packet: bytes,
              packet_base: int = PACKET_BASE,
              state_base: int = KV_STATE_BASE) -> Memory:
    """Memory for one invocation: writable packet, zeroed state area."""
    memory = Memory()
    memory.map_region(packet_base, _pad8(packet), writable=True,
                      name="packet")
    memory.map_region(state_base, bytes(STATE_SIZE), writable=True,
                      name="state")
    return memory


def reusable_kv_memory(packet_base: int = PACKET_BASE,
                       state_base: int = KV_STATE_BASE):
    """One kernel-side :class:`Memory` reused across a whole trace.

    Returns ``(memory, rebind)``.  ``rebind(packet)`` swaps the packet
    region's bytes in place — but, unlike the BPF scratch, the state
    area is **not** re-zeroed: the table persists across invocations,
    which is the entire point of a KV extension.  State is per shard
    (each shard owns one memory), mirroring per-CPU kernel maps.
    """
    memory = Memory()
    memory.map_region(packet_base, bytes(8), writable=True, name="packet")
    memory.map_region(state_base, bytes(STATE_SIZE), writable=True,
                      name="state")
    rebind_region = memory.rebind_region

    def rebind(packet: bytes) -> None:
        remainder = len(packet) % 8
        if remainder:
            rebind_region("packet", packet + b"\x00" * (8 - remainder))
        else:
            rebind_region("packet", packet)

    return memory, rebind


def kv_registers(packet_length: int,
                 packet_base: int = PACKET_BASE,
                 state_base: int = KV_STATE_BASE) -> dict[int, int]:
    """Entry register file for a KV invocation (r1, r2, r3)."""
    return {1: packet_base, 2: packet_length, 3: state_base}


# -- pure-Python oracles ----------------------------------------------
#
# Each oracle replicates its program's Alpha semantics exactly over
# ``(state, frame)``: ``state`` is the 20-word state area as a mutable
# list of ints, ``frame`` the raw frame bytes.  It returns ``(verdict,
# padded_frame_bytes)`` where the padded bytes are the packet region's
# post-state (frames are mapped zero-padded to a word boundary, and
# the rewriters store whole words).


def initial_state() -> list[int]:
    """A fresh (zeroed) state area, as the oracle's word list."""
    return [0] * STATE_WORDS


def _word(data: bytes, offset: int) -> int:
    return int.from_bytes(data[offset:offset + 8], "little")


def _put_word(data: bytearray, offset: int, value: int) -> None:
    data[offset:offset + 8] = (value & _WORD_MASK).to_bytes(8, "little")


def _src_key(padded: bytes) -> int:
    """The source-IP key: bits 16..47 of frame word 24."""
    return (_word(padded, 24) >> 16) & 0xFFFFFFFF


def _ethertype(padded: bytes) -> int:
    return (_word(padded, 8) >> 32) & 0xFFFF


def _scan(state: list[int], key: int) -> int | None:
    """First slot whose key matches, else first free slot, else None."""
    for slot in range(TABLE_SLOTS):
        word = state[slot]
        if (word & 0xFFFFFFFF) == key or word == 0:
            return slot
    return None


def kv_insert_oracle(state: list[int],
                     frame: bytes) -> tuple[int, bytes]:
    padded = _pad8(frame)
    key = _src_key(padded)
    slot = _scan(state, key)
    if slot is None:
        return 0, padded
    state[slot] = key | (TTL_INIT << 32)
    return 1, padded


def kv_evict_oracle(state: list[int],
                    frame: bytes) -> tuple[int, bytes]:
    padded = _pad8(frame)
    evicted = 0
    for slot in range(TABLE_SLOTS):
        word = state[slot]
        if word == 0:
            continue
        if (word >> 32) <= 1:
            state[slot] = 0
            evicted += 1
        else:
            state[slot] = (word - (1 << 32)) & _WORD_MASK
    return evicted, padded


def nat_rewrite_oracle(state: list[int],
                       frame: bytes) -> tuple[int, bytes]:
    padded = _pad8(frame)
    if _ethertype(padded) != 0x0008:
        return 0, padded
    key = _src_key(padded)
    if key & 0xFFFFFF != 0xCE0280:       # not a network-A source
        return 0, padded
    slot = _scan(state, key)
    if slot is None:
        return 0, padded
    state[slot] = key | (TTL_INIT << 32)
    out = bytearray(padded)
    word = _word(padded, 24)
    lane = 0xFFFFFFFF << 16
    _put_word(out, 24, (word & ~lane) | (NAT_IP_LE << 16))
    state[COUNT_OFFSET // 8] = (state[COUNT_OFFSET // 8] + 1) & _WORD_MASK
    return 1, bytes(out)


def lb_balance_oracle(state: list[int],
                      frame: bytes) -> tuple[int, bytes]:
    padded = _pad8(frame)
    if _ethertype(padded) != 0x0008:
        return 0, padded
    best = min(state[:BACKEND_SLOTS])
    index = state[:BACKEND_SLOTS].index(best)
    state[index] = (state[index] + 1) & _WORD_MASK
    octet = BACKEND_OCTET_BASE + index
    out = bytearray(padded)
    word = _word(padded, 32)
    _put_word(out, 32, (word & ~0xFF00) | (octet << 8))
    return 1, bytes(out)


#: name -> oracle, one per program in :data:`KV_PROGRAMS`.
ORACLES: dict[str, Callable[[list[int], bytes], tuple[int, bytes]]] = {
    KV_INSERT.name: kv_insert_oracle,
    KV_EVICT.name: kv_evict_oracle,
    NAT_REWRITE.name: nat_rewrite_oracle,
    LB_BALANCE.name: lb_balance_oracle,
}


def oracle_run(name: str, frames) -> tuple[list[int], list[bytes],
                                           list[int]]:
    """Run ``name``'s oracle over ``frames`` serially from a fresh state.

    Returns ``(verdicts, padded_frames_out, final_state)`` — the
    reference a single-shard runtime dispatch must match bit for bit.
    """
    oracle = ORACLES[name]
    state = initial_state()
    verdicts: list[int] = []
    outputs: list[bytes] = []
    for frame in frames:
        verdict, out = oracle(state, frame)
        verdicts.append(verdict)
        outputs.append(out)
    return verdicts, outputs, state
