"""Ethernet / ARP / IPv4 / TCP / UDP packet synthesis and parsing.

Wire-format-accurate builders (network byte order, real header layouts,
correct IP header checksums) plus the small parsing helpers the oracles
use.  Packets are plain ``bytes``; the minimum Ethernet frame is 64 bytes
(the paper's precondition relies on this) and builders pad to it.

Only the fields the four filters inspect are modelled carefully; payloads
are caller-supplied or zero.
"""

from __future__ import annotations

import struct

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806
PROTO_TCP = 6
PROTO_UDP = 17

MIN_FRAME = 64
MAX_FRAME = 1518

ETH_HEADER = 14
IP_OFFSET = ETH_HEADER


def mac(text: str) -> bytes:
    """Parse ``aa:bb:cc:dd:ee:ff`` into 6 bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC address {text!r}")
    return bytes(int(part, 16) for part in parts)


def ipv4(text: str) -> bytes:
    """Parse dotted-quad into 4 bytes."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {text!r}")
    return bytes(int(part) for part in parts)


def ip_checksum(header: bytes) -> int:
    """RFC 791 one's-complement header checksum."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f">{len(header) // 2}H", header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def make_ethernet(ethertype: int, payload: bytes,
                  dst: bytes = b"\xff" * 6,
                  src: bytes = b"\x02\x00\x00\x00\x00\x01") -> bytes:
    """An Ethernet frame, zero-padded to the 64-byte minimum."""
    frame = dst + src + struct.pack(">H", ethertype) + payload
    if len(frame) < MIN_FRAME:
        frame += b"\x00" * (MIN_FRAME - len(frame))
    if len(frame) > MAX_FRAME:
        raise ValueError(f"frame of {len(frame)} bytes exceeds Ethernet MTU")
    return frame


def make_ip_header(src: bytes, dst: bytes, proto: int, payload_len: int,
                   options: bytes = b"", ttl: int = 64,
                   ident: int = 0) -> bytes:
    """An IPv4 header with correct IHL and checksum.

    ``options`` must be a multiple of 4 bytes; a non-empty options field is
    what makes Filter 4's variable header-length computation interesting.
    """
    if len(options) % 4:
        raise ValueError("IP options must be a multiple of 4 bytes")
    ihl_words = 5 + len(options) // 4
    if ihl_words > 15:
        raise ValueError("IP header too long")
    total_length = ihl_words * 4 + payload_len
    header = struct.pack(
        ">BBHHHBBH4s4s",
        (4 << 4) | ihl_words,  # version + IHL
        0,                     # DSCP/ECN
        total_length,
        ident,
        0,                     # flags/fragment offset
        ttl,
        proto,
        0,                     # checksum placeholder
        src,
        dst,
    ) + options
    checksum = ip_checksum(header)
    return header[:10] + struct.pack(">H", checksum) + header[12:]


def make_ip_packet(src: str, dst: str, proto: int, payload: bytes = b"",
                   options: bytes = b"") -> bytes:
    """An Ethernet frame carrying an IPv4 packet."""
    header = make_ip_header(ipv4(src), ipv4(dst), proto, len(payload),
                            options)
    return make_ethernet(ETHERTYPE_IP, header + payload)


def make_tcp_packet(src: str, dst: str, src_port: int, dst_port: int,
                    payload: bytes = b"", options: bytes = b"") -> bytes:
    """An Ethernet/IPv4/TCP packet (minimal 20-byte TCP header)."""
    tcp = struct.pack(">HHIIBBHHH", src_port, dst_port, 0, 0,
                      5 << 4, 0x02, 8192, 0, 0) + payload
    return make_ip_packet(src, dst, PROTO_TCP, tcp, options)


def make_udp_packet(src: str, dst: str, src_port: int, dst_port: int,
                    payload: bytes = b"") -> bytes:
    """An Ethernet/IPv4/UDP packet."""
    udp = struct.pack(">HHHH", src_port, dst_port, 8 + len(payload), 0) \
        + payload
    return make_ip_packet(src, dst, PROTO_UDP, udp)


def make_arp_packet(sender_ip: str, target_ip: str,
                    oper: int = 1,
                    sender_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
                    target_mac: bytes = b"\x00" * 6) -> bytes:
    """An Ethernet ARP request/reply for IPv4 over Ethernet."""
    arp = struct.pack(">HHBBH", 1, ETHERTYPE_IP, 6, 4, oper) \
        + sender_mac + ipv4(sender_ip) + target_mac + ipv4(target_ip)
    return make_ethernet(ETHERTYPE_ARP, arp)


# -- parsing helpers (used by the oracles) ----------------------------------

def ethertype_of(frame: bytes) -> int:
    return struct.unpack_from(">H", frame, 12)[0]


def ip_source(frame: bytes) -> bytes:
    return frame[IP_OFFSET + 12:IP_OFFSET + 16]


def ip_destination(frame: bytes) -> bytes:
    return frame[IP_OFFSET + 16:IP_OFFSET + 20]


def ip_protocol(frame: bytes) -> int:
    return frame[IP_OFFSET + 9]


def ip_header_length(frame: bytes) -> int:
    return (frame[IP_OFFSET] & 0x0F) * 4


def arp_sender_ip(frame: bytes) -> bytes:
    return frame[ETH_HEADER + 14:ETH_HEADER + 18]


def arp_target_ip(frame: bytes) -> bytes:
    return frame[ETH_HEADER + 24:ETH_HEADER + 28]


def tcp_destination_port(frame: bytes) -> int | None:
    """Destination port of a TCP frame, or None if not IP/TCP or truncated."""
    if ethertype_of(frame) != ETHERTYPE_IP:
        return None
    if ip_protocol(frame) != PROTO_TCP:
        return None
    offset = IP_OFFSET + ip_header_length(frame) + 2
    if offset + 2 > len(frame):
        return None
    return struct.unpack_from(">H", frame, offset)[0]
