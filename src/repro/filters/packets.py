"""Ethernet / ARP / IPv4 / TCP / UDP packet synthesis and parsing.

Wire-format-accurate builders (network byte order, real header layouts,
correct IP header checksums) plus the small parsing helpers the oracles
use.  Packets are plain ``bytes``; the minimum Ethernet frame is 64 bytes
(the paper's precondition relies on this) and builders pad to it.

Only the fields the four filters inspect are modelled carefully; payloads
are caller-supplied or zero.
"""

from __future__ import annotations

import struct

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806
PROTO_TCP = 6
PROTO_UDP = 17

MIN_FRAME = 64
MAX_FRAME = 1518

ETH_HEADER = 14
IP_OFFSET = ETH_HEADER


def mac(text: str) -> bytes:
    """Parse ``aa:bb:cc:dd:ee:ff`` into 6 bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC address {text!r}")
    return bytes(int(part, 16) for part in parts)


def ipv4(text: str) -> bytes:
    """Parse dotted-quad into 4 bytes."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {text!r}")
    return bytes(int(part) for part in parts)


def ip_checksum(header: bytes) -> int:
    """RFC 791 one's-complement header checksum."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f">{len(header) // 2}H", header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def make_ethernet(ethertype: int, payload: bytes,
                  dst: bytes = b"\xff" * 6,
                  src: bytes = b"\x02\x00\x00\x00\x00\x01") -> bytes:
    """An Ethernet frame, zero-padded to the 64-byte minimum."""
    frame = dst + src + struct.pack(">H", ethertype) + payload
    if len(frame) < MIN_FRAME:
        frame += b"\x00" * (MIN_FRAME - len(frame))
    if len(frame) > MAX_FRAME:
        raise ValueError(f"frame of {len(frame)} bytes exceeds Ethernet MTU")
    return frame


def make_ip_header(src: bytes, dst: bytes, proto: int, payload_len: int,
                   options: bytes = b"", ttl: int = 64,
                   ident: int = 0) -> bytes:
    """An IPv4 header with correct IHL and checksum.

    ``options`` must be a multiple of 4 bytes; a non-empty options field is
    what makes Filter 4's variable header-length computation interesting.
    """
    if len(options) % 4:
        raise ValueError("IP options must be a multiple of 4 bytes")
    ihl_words = 5 + len(options) // 4
    if ihl_words > 15:
        raise ValueError("IP header too long")
    total_length = ihl_words * 4 + payload_len
    header = struct.pack(
        ">BBHHHBBH4s4s",
        (4 << 4) | ihl_words,  # version + IHL
        0,                     # DSCP/ECN
        total_length,
        ident,
        0,                     # flags/fragment offset
        ttl,
        proto,
        0,                     # checksum placeholder
        src,
        dst,
    ) + options
    checksum = ip_checksum(header)
    return header[:10] + struct.pack(">H", checksum) + header[12:]


def make_ip_packet(src: str, dst: str, proto: int, payload: bytes = b"",
                   options: bytes = b"") -> bytes:
    """An Ethernet frame carrying an IPv4 packet."""
    header = make_ip_header(ipv4(src), ipv4(dst), proto, len(payload),
                            options)
    return make_ethernet(ETHERTYPE_IP, header + payload)


def make_tcp_packet(src: str, dst: str, src_port: int, dst_port: int,
                    payload: bytes = b"", options: bytes = b"") -> bytes:
    """An Ethernet/IPv4/TCP packet (minimal 20-byte TCP header)."""
    tcp = struct.pack(">HHIIBBHHH", src_port, dst_port, 0, 0,
                      5 << 4, 0x02, 8192, 0, 0) + payload
    return make_ip_packet(src, dst, PROTO_TCP, tcp, options)


def make_udp_packet(src: str, dst: str, src_port: int, dst_port: int,
                    payload: bytes = b"") -> bytes:
    """An Ethernet/IPv4/UDP packet."""
    udp = struct.pack(">HHHH", src_port, dst_port, 8 + len(payload), 0) \
        + payload
    return make_ip_packet(src, dst, PROTO_UDP, udp)


def make_arp_packet(sender_ip: str, target_ip: str,
                    oper: int = 1,
                    sender_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
                    target_mac: bytes = b"\x00" * 6) -> bytes:
    """An Ethernet ARP request/reply for IPv4 over Ethernet."""
    arp = struct.pack(">HHBBH", 1, ETHERTYPE_IP, 6, 4, oper) \
        + sender_mac + ipv4(sender_ip) + target_mac + ipv4(target_ip)
    return make_ethernet(ETHERTYPE_ARP, arp)


# -- fault injection (hostile-workload helpers) -----------------------------
#
# The dispatch runtime's robustness tests need frames that break the
# kernel/filter contract in the three interesting ways: frames *shorter*
# than the 64-byte minimum the precondition promises (r2 >= 64), frames
# *longer* than the Ethernet MTU a receive buffer would hold, and frames
# whose length/offset fields lie about the bytes actually present.  The
# builders above refuse to produce such frames, so these helpers mutate
# well-formed ones after the fact — exactly what a hostile or broken NIC
# driver would hand the kernel.

def truncate_frame(frame: bytes, length: int = 32) -> bytes:
    """Cut ``frame`` below the 64-byte minimum the filter precondition
    relies on.  A filter certified under ``r2 >= 64`` may read past the
    end of such a frame — which is precisely the fault the runtime must
    contain when a caller violates the invocation contract."""
    if not 0 < length < MIN_FRAME:
        raise ValueError(f"truncation length {length} is not below the "
                         f"{MIN_FRAME}-byte minimum")
    return frame[:length]


def oversize_frame(frame: bytes, length: int = MAX_FRAME + 512) -> bytes:
    """Zero-pad ``frame`` past the Ethernet MTU (a jumbo/mis-DMA frame).
    Certified filters handle any length safely, but a kernel enforcing
    its receive-buffer contract should drop these at the boundary."""
    if length <= MAX_FRAME:
        raise ValueError(f"oversize length {length} does not exceed the "
                         f"{MAX_FRAME}-byte MTU")
    return frame + b"\x00" * (length - len(frame))


def adversarial_ihl_frame(frame: bytes, ihl_words: int = 15) -> bytes:
    """Rewrite the IP header-length nibble to ``ihl_words`` without
    growing the frame (and without fixing the checksum): the header
    claims more bytes than the frame carries, so any filter that trusts
    the IHL field to compute an offset reads out of bounds.  The paper's
    Filter 4 bounds-checks the derived offset against ``r2`` and must
    reject such frames instead of faulting."""
    if not 0 <= ihl_words <= 15:
        raise ValueError(f"IHL must fit in a nibble, got {ihl_words}")
    if len(frame) <= IP_OFFSET:
        raise ValueError("frame too short to carry an IP header")
    mutated = bytearray(frame)
    mutated[IP_OFFSET] = (4 << 4) | ihl_words
    return bytes(mutated)


#: The fault kinds :func:`inject_faults` knows how to synthesize.
FAULT_KINDS = ("truncated", "oversized", "adversarial-ihl")


def inject_faults(trace: list[bytes], fraction: float = 0.05,
                  kinds: tuple[str, ...] = FAULT_KINDS,
                  seed: int = 0xFA017) -> list[tuple[int, str]]:
    """Corrupt a deterministic ``fraction`` of ``trace`` in place.

    Returns ``(index, kind)`` for every corrupted frame so tests know
    exactly which packets were sabotaged.  The RNG is seeded, so the
    same call on the same trace always corrupts the same frames the
    same way.
    """
    import random

    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from "
                             f"{FAULT_KINDS}")
    rng = random.Random(seed)
    count = int(len(trace) * fraction)
    injected = []
    for index in sorted(rng.sample(range(len(trace)), count)):
        kind = rng.choice(kinds)
        if kind == "truncated":
            trace[index] = truncate_frame(trace[index],
                                          rng.randrange(8, MIN_FRAME))
        elif kind == "oversized":
            trace[index] = oversize_frame(
                trace[index], MAX_FRAME + rng.randrange(8, 1024))
        else:
            trace[index] = adversarial_ihl_frame(trace[index],
                                                 rng.randrange(6, 16))
        injected.append((index, kind))
    return injected


# -- parsing helpers (used by the oracles) ----------------------------------

def ethertype_of(frame: bytes) -> int:
    return struct.unpack_from(">H", frame, 12)[0]


def ip_source(frame: bytes) -> bytes:
    return frame[IP_OFFSET + 12:IP_OFFSET + 16]


def ip_destination(frame: bytes) -> bytes:
    return frame[IP_OFFSET + 16:IP_OFFSET + 20]


def ip_protocol(frame: bytes) -> int:
    return frame[IP_OFFSET + 9]


def ip_header_length(frame: bytes) -> int:
    return (frame[IP_OFFSET] & 0x0F) * 4


def arp_sender_ip(frame: bytes) -> bytes:
    return frame[ETH_HEADER + 14:ETH_HEADER + 18]


def arp_target_ip(frame: bytes) -> bytes:
    return frame[ETH_HEADER + 24:ETH_HEADER + 28]


def tcp_destination_port(frame: bytes) -> int | None:
    """Destination port of a TCP frame, or None if not IP/TCP or truncated."""
    if ethertype_of(frame) != ETHERTYPE_IP:
        return None
    if ip_protocol(frame) != PROTO_TCP:
        return None
    offset = IP_OFFSET + ip_header_length(frame) + 2
    if offset + 2 > len(frame):
        return None
    return struct.unpack_from(">H", frame, offset)[0]
