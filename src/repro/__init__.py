"""Proof-carrying code: Necula & Lee, OSDI '96, reproduced in Python.

The package implements the full PCC stack — DEC Alpha subset, first-order
logic with two's-complement arithmetic, Floyd-style VC generation, an
automatic theorem prover, LF proof representation and type checking, and
the PCC binary container — plus the paper's application (network packet
filters) and every baseline it measures against (BPF, SFI, a Modula-3-like
safe language).

Most users want the high-level API:

>>> from repro.pcc import CodeProducer, CodeConsumer
>>> from repro.vcgen.policy import resource_access_policy

See README.md for the tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-versus-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "alpha",
    "baselines",
    "errors",
    "filters",
    "lf",
    "logic",
    "pcc",
    "perf",
    "proof",
    "prover",
    "vcgen",
]
