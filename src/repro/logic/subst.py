"""Capture-avoiding substitution on terms and formulas.

The VC generator works by substituting terms for register variables in
predicates — the paper's ``P[rd <- rs (+) op]`` notation — so substitution
is on the hot path of the whole system.  Substitutions map variable *names*
to terms; applying one under a quantifier renames the bound variable when it
would capture a free variable of a substituted term.
"""

from __future__ import annotations

from itertools import count
from typing import Mapping

from repro.errors import LogicError
from repro.logic.formulas import (
    And,
    Atom,
    Falsity,
    Forall,
    Formula,
    Implies,
    Or,
    Truth,
)
from repro.logic.terms import App, Int, Term, Var, term_vars


def subst_term(term: Term, mapping: Mapping[str, Term],
               _memo: dict | None = None) -> Term:
    """Apply ``mapping`` to every variable occurrence in ``term``.

    Memoized on node identity: VC formulas are DAGs (diamond control flow
    shares subformulas), and naive structural recursion would revisit
    shared nodes exponentially often.  The memo also *preserves* sharing
    in the output, keeping later passes fast too.
    """
    memo = _memo if _memo is not None else {}

    def walk(t: Term) -> Term:
        if isinstance(t, Int):
            return t
        if isinstance(t, Var):
            return mapping.get(t.name, t)
        cached = memo.get(id(t))
        if cached is not None:
            return cached
        new_args = tuple(walk(arg) for arg in t.args)
        result = t if new_args == t.args else App(t.op, new_args)
        memo[id(t)] = result
        return result

    return walk(term)


def _fresh_name(base: str, avoid: set[str]) -> str:
    """A variable name derived from ``base`` not occurring in ``avoid``."""
    for suffix in count(1):
        candidate = f"{base}'{suffix}"
        if candidate not in avoid:
            return candidate
    raise LogicError("unreachable")  # pragma: no cover


def rename_bound(formula: Forall, new_name: str) -> Forall:
    """Alpha-rename the binder of ``formula`` to ``new_name``."""
    body = subst_formula(formula.body, {formula.var: Var(new_name)})
    return Forall(new_name, body)


def subst_formula(formula: Formula, mapping: Mapping[str, Term],
                  _memo: dict | None = None) -> Formula:
    """Apply ``mapping`` to the free variables of ``formula``.

    Bound variables shadow the mapping; if a substituted term mentions the
    bound name, the binder is alpha-renamed first so nothing is captured.
    Like :func:`subst_term`, this is memoized on node identity per mapping
    (crossing a binder changes the mapping and gets a fresh memo), which
    keeps VC generation polynomial on diamond-shaped control flow.
    """
    memo = _memo if _memo is not None else {}
    term_memo: dict = {}

    def walk(f: Formula) -> Formula:
        if isinstance(f, (Truth, Falsity)):
            return f
        cached = memo.get(id(f))
        if cached is not None:
            return cached
        result = _subst_node(f)
        memo[id(f)] = result
        return result

    def _subst_node(f: Formula) -> Formula:
        if isinstance(f, Atom):
            new_args = tuple(subst_term(arg, mapping, term_memo)
                             for arg in f.args)
            if new_args == f.args:
                return f
            return Atom(f.pred, new_args)
        if isinstance(f, (And, Or, Implies)):
            left = walk(f.left)
            right = walk(f.right)
            if left is f.left and right is f.right:
                return f  # keep the original object: sharing must survive
            return type(f)(left, right)
        if isinstance(f, Forall):
            inner = {name: term for name, term in mapping.items()
                     if name != f.var}
            if not inner:
                return f
            free_in_terms: set[str] = set()
            for term in inner.values():
                free_in_terms |= term_vars(term)
            if f.var in free_in_terms:
                avoid = free_in_terms | set(inner) | {f.var}
                renamed = rename_bound(f, _fresh_name(f.var, avoid))
                return Forall(renamed.var,
                              subst_formula(renamed.body, inner))
            body = subst_formula(f.body, inner)
            if body is f.body:
                return f
            return Forall(f.var, body)
        raise LogicError(f"not a formula: {f!r}")

    return walk(formula)
