"""Semantics-preserving simplification of terms and formulas.

The paper notes that the safety predicate is reported "after a few trivial
simplifications".  Everything here is *unconditionally* sound — each rewrite
holds for all integer values of the free variables, which the property tests
in ``tests/logic/test_simplify.py`` verify by random evaluation.  In
particular we do **not** rewrite ``add64(x, 0)`` to ``x``: those two terms
differ when ``x`` is out of word range, and conditional rewrites belong in
the prover, not here.

The simplifier is untrusted on the consumer side only in the sense that the
consumer applies it to *its own* VC output before comparison; both producer
and consumer run the identical deterministic routine, so simplification
never weakens the tamper-detection story.
"""

from __future__ import annotations

from repro.logic.formulas import (
    And,
    Atom,
    Falsity,
    Forall,
    Formula,
    Implies,
    Or,
    Truth,
)
from repro.logic.terms import OPS, App, Int, Term, Var, WORD_MOD


def _const_fold(term: App) -> Term | None:
    """Fold an application whose arguments are all literals."""
    if any(not isinstance(arg, Int) for arg in term.args):
        return None
    if term.op in ("sel", "upd"):
        return None
    values = [arg.value for arg in term.args]
    result = OPS[term.op].evaluate(*values)
    return Int(result)


def simplify_term(term: Term, _memo: dict | None = None) -> Term:
    """Bottom-up simplification of ``term`` (identity-memoized: VC terms
    are DAGs and sharing must be preserved, not re-expanded)."""
    memo = _memo if _memo is not None else {}
    if isinstance(term, (Int, Var)):
        return term
    cached = memo.get(id(term))
    if cached is not None:
        return cached
    result = _simplify_app(term, memo)
    memo[id(term)] = result
    return result


def _simplify_app(term: App, memo: dict) -> Term:
    args = tuple(simplify_term(arg, memo) for arg in term.args)
    if args != term.args:
        term = App(term.op, args)

    folded = _const_fold(term)
    if folded is not None:
        return folded

    a = args[0]
    b = args[1] if len(args) > 1 else None

    # (x (+) c1) (+) c2  ->  x (+) ((c1+c2) mod 2^64): associativity of
    # addition mod 2^64 holds regardless of the range of x.
    if (term.op == "add64" and isinstance(b, Int) and isinstance(a, App)
            and a.op == "add64" and isinstance(a.args[1], Int)):
        merged = (a.args[1].value + b.value) % WORD_MOD
        return simplify_term(App("add64", (a.args[0], Int(merged))), memo)

    # and64(x, 0) = 0 and and64(0, x) = 0 unconditionally.
    if term.op == "and64" and (a == Int(0) or b == Int(0)):
        return Int(0)

    # mod64(mod64(x)) = mod64(x); mod64 of any 64-bit operator result is
    # the result itself, because machine operators already reduce.
    if term.op == "mod64":
        if isinstance(a, App) and a.op in _WORD_VALUED_OPS:
            return a
        if isinstance(a, Int):
            return Int(a.value % WORD_MOD)

    # sel(upd(m, a, v), a) = v requires address equality, which is only
    # decidable here for literal addresses.
    if term.op == "sel" and isinstance(a, App) and a.op == "upd":
        written_addr = a.args[1]
        read_addr = args[1]
        if (isinstance(written_addr, Int) and isinstance(read_addr, Int)):
            if written_addr.value % WORD_MOD == read_addr.value % WORD_MOD:
                return App("mod64", (a.args[2],))

    return term


#: Operators whose result is always already reduced into [0, 2^64).
#: ``sel`` counts because memory cells hold words; the pure integer
#: operators and ``upd`` (memory-valued) do not.
_WORD_VALUED_OPS = frozenset(
    op for op in OPS if op not in ("upd", "add", "sub", "mul"))


def _atom_truth(atom: Atom) -> bool | None:
    """Decide a ground comparison atom, or return None."""
    if atom.pred in ("rd", "wr"):
        return None
    if not all(isinstance(arg, Int) for arg in atom.args):
        return None
    a = atom.args[0].value
    b = atom.args[1].value
    return {
        "eq": a == b,
        "ne": a != b,
        "lt": a < b,
        "le": a <= b,
        "gt": a > b,
        "ge": a >= b,
    }[atom.pred]


def simplify_formula(formula: Formula, _memo: dict | None = None,
                     _term_memo: dict | None = None) -> Formula:
    """Bottom-up simplification: fold terms, decide ground atoms, and apply
    the unit laws of the connectives.  Identity-memoized like
    :func:`simplify_term`."""
    memo = _memo if _memo is not None else {}
    term_memo = _term_memo if _term_memo is not None else {}
    cached = memo.get(id(formula))
    if cached is not None:
        return cached
    result = _simplify_formula_node(formula, memo, term_memo)
    memo[id(formula)] = result
    return result


def _simplify_formula_node(formula: Formula, memo: dict,
                           term_memo: dict) -> Formula:
    def recur(f: Formula) -> Formula:
        return simplify_formula(f, memo, term_memo)

    if isinstance(formula, (Truth, Falsity)):
        return formula
    if isinstance(formula, Atom):
        new_args = tuple(simplify_term(arg, term_memo)
                         for arg in formula.args)
        atom = formula if new_args == formula.args \
            else Atom(formula.pred, new_args)
        truth = _atom_truth(atom)
        if truth is True:
            return Truth()
        if truth is False:
            return Falsity()
        return atom
    if isinstance(formula, And):
        left = recur(formula.left)
        right = recur(formula.right)
        if isinstance(left, Falsity) or isinstance(right, Falsity):
            return Falsity()
        if isinstance(left, Truth):
            return right
        if isinstance(right, Truth):
            return left
        if left is formula.left and right is formula.right:
            return formula
        return And(left, right)
    if isinstance(formula, Or):
        left = recur(formula.left)
        right = recur(formula.right)
        if isinstance(left, Truth) or isinstance(right, Truth):
            return Truth()
        if isinstance(left, Falsity):
            return right
        if isinstance(right, Falsity):
            return left
        if left is formula.left and right is formula.right:
            return formula
        return Or(left, right)
    if isinstance(formula, Implies):
        left = recur(formula.left)
        right = recur(formula.right)
        if isinstance(left, Falsity) or isinstance(right, Truth):
            return Truth()
        if isinstance(left, Truth):
            return right
        if left is formula.left and right is formula.right:
            return formula
        return Implies(left, right)
    if isinstance(formula, Forall):
        body = recur(formula.body)
        if isinstance(body, Truth):
            return Truth()
        if body is formula.body:
            return formula
        return Forall(formula.var, body)
    raise TypeError(f"not a formula: {formula!r}")
