"""Pair-memoized structural equality for immutable DAG nodes.

Safety-predicate formulas, proofs, and their LF encodings are DAGs: the
same join-point subformula appears under every branch of diamond control
flow.  Plain structural ``==`` between two *distinct* objects walks the
unfolded tree — exponential in program size for conditional chains — even
when both operands internally share nodes, because recursion has no memory.

Every node class in this code base therefore implements ``__eq__`` through
:func:`dag_equal`, which

* short-circuits on identity,
* rejects on cached hashes (computed once per node, also identity-cached),
* and memoizes verdicts per object *pair*, making repeated deep
  comparisons linear in the number of distinct node pairs.

The cache is global and bounded; entries keep their operands alive so ids
stay valid.
"""

from __future__ import annotations

from typing import Callable

_CACHE: dict[tuple[int, int], tuple] = {}
_CACHE_LIMIT = 1_000_000


def dag_equal(a, b, fields: Callable) -> bool:
    """Structural equality of two same-class nodes.

    ``fields(x)`` returns the comparison-relevant field tuple; children
    are compared with ``==``, re-entering their own pair-memoized
    ``__eq__``.
    """
    if a is b:
        return True
    if hash(a) != hash(b):  # hashes are cached on the nodes
        return False
    key = (id(a), id(b)) if id(a) < id(b) else (id(b), id(a))
    cached = _CACHE.get(key)
    if cached is not None:
        return cached[2]
    result = fields(a) == fields(b)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = (a, b, result)
    return result
