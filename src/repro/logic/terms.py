"""Logical terms over unbounded integers with 64-bit machine operators.

Terms are immutable and hashable, so they can be shared freely, used as
dictionary keys, and compared structurally.  Three constructors suffice:

* :class:`Int` — an integer literal (arbitrary precision),
* :class:`Var` — a logical variable (machine registers ``r0`` .. ``r10``,
  the memory pseudo-register ``rm``, and quantifier-bound variables),
* :class:`App` — application of one of the operators in :data:`OPS`.

Machine operators are *total*: they reduce their integer operands modulo
2**64 before computing, so a term like ``add64(x, y)`` always denotes a
value in ``[0, 2**64)`` no matter what ``x`` and ``y`` denote.  This mirrors
the paper's circled-plus definition and keeps the arithmetic axiom schemas
(:mod:`repro.proof.rules`) unconditional.

Memory is modelled with ``sel``/``upd`` exactly as in the paper: ``rm`` is a
pseudo-register holding the whole memory state, ``sel(rm, a)`` reads address
``a`` and ``upd(rm, a, v)`` is the state after writing ``v`` at ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Union

from repro.errors import LogicError
from repro.logic.eqcache import dag_equal

WORD_BITS = 64
WORD_MOD = 1 << WORD_BITS
WORD_MASK = WORD_MOD - 1


@dataclass(frozen=True, slots=True)
class Int:
    """An integer literal.  Values are unbounded Python ints."""

    value: int

    def __repr__(self) -> str:
        return f"Int({self.value})"


@dataclass(frozen=True, slots=True)
class Var:
    """A logical variable, identified by name.

    Machine registers appear as ``r0`` .. ``r10``; the memory state as
    ``rm``; quantified variables carry whatever name the formula binds.
    """

    name: str

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True, slots=True)
class App:
    """Application of an operator to argument terms.

    The operator must be a key of :data:`OPS`; the argument count must match
    the declared arity.  Use the module-level helpers (:func:`add64`, ...)
    rather than constructing ``App`` directly.

    Hashes are cached on first use: terms are immutable trees used as
    dictionary keys throughout the prover, and recomputing a deep
    structural hash on every lookup dominated certification time.
    """

    op: str
    args: tuple["Term", ...]
    _hash: int | None = field(default=None, init=False, compare=False,
                              repr=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self.op, self.args))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, App):
            return NotImplemented
        return dag_equal(self, other,
                         lambda node: (node.op, node.args))

    def __post_init__(self) -> None:
        spec = OPS.get(self.op)
        if spec is None:
            raise LogicError(f"unknown operator {self.op!r}")
        if len(self.args) != spec.arity:
            raise LogicError(
                f"operator {self.op!r} expects {spec.arity} arguments, "
                f"got {len(self.args)}")

    def __repr__(self) -> str:
        return f"App({self.op!r}, {self.args!r})"


Term = Union[Int, Var, App]


class _Memory:
    """Immutable functional memory used by the term evaluator.

    ``sel``/``upd`` chains evaluate to instances of this class.  A base
    mapping provides initial contents; updates layer on top without
    mutating the base.
    """

    __slots__ = ("_base", "_writes")

    def __init__(self, base: Mapping[int, int] | None = None,
                 writes: dict[int, int] | None = None) -> None:
        self._base = dict(base) if base else {}
        self._writes = dict(writes) if writes else {}

    def read(self, address: int) -> int:
        if address in self._writes:
            return self._writes[address]
        return self._base.get(address, 0)

    def write(self, address: int, value: int) -> "_Memory":
        new_writes = dict(self._writes)
        new_writes[address] = value & WORD_MASK
        return _Memory(self._base, new_writes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Memory):
            return NotImplemented
        keys = (set(self._base) | set(self._writes)
                | set(other._base) | set(other._writes))
        return all(self.read(k) == other.read(k) for k in keys)

    def __hash__(self) -> int:  # pragma: no cover - memories rarely hashed
        return 0


def _w(value: int) -> int:
    """Reduce a semantic integer to a 64-bit machine word."""
    return value % WORD_MOD


def _ev_add64(a: int, b: int) -> int:
    return (_w(a) + _w(b)) % WORD_MOD


def _ev_sub64(a: int, b: int) -> int:
    return (_w(a) - _w(b)) % WORD_MOD


def _ev_mul64(a: int, b: int) -> int:
    return (_w(a) * _w(b)) % WORD_MOD


def _ev_and64(a: int, b: int) -> int:
    return _w(a) & _w(b)


def _ev_or64(a: int, b: int) -> int:
    return _w(a) | _w(b)


def _ev_xor64(a: int, b: int) -> int:
    return _w(a) ^ _w(b)


def _ev_sll64(a: int, b: int) -> int:
    # The Alpha uses only the low 6 bits of the shift count.
    return (_w(a) << (_w(b) & 63)) % WORD_MOD


def _ev_srl64(a: int, b: int) -> int:
    return _w(a) >> (_w(b) & 63)


def _ev_mod64(a: int) -> int:
    return _w(a)


def _ev_cmpeq(a: int, b: int) -> int:
    return 1 if _w(a) == _w(b) else 0


def _ev_cmpult(a: int, b: int) -> int:
    return 1 if _w(a) < _w(b) else 0


def _ev_cmpule(a: int, b: int) -> int:
    return 1 if _w(a) <= _w(b) else 0


def _ev_extbl(a: int, b: int) -> int:
    """Alpha EXTBL: extract the byte selected by the low 3 bits of ``b``."""
    return (_w(a) >> (8 * (_w(b) & 7))) & 0xFF


def _ev_extwl(a: int, b: int) -> int:
    """Alpha EXTWL: extract the 16-bit word at byte offset ``b & 7``."""
    return (_w(a) >> (8 * (_w(b) & 7))) & 0xFFFF


def _ev_extll(a: int, b: int) -> int:
    """Alpha EXTLL: extract the 32-bit longword at byte offset ``b & 7``."""
    return (_w(a) >> (8 * (_w(b) & 7))) & 0xFFFFFFFF


def _ev_sel(m: _Memory, a: int) -> int:
    # Memory cells hold 64-bit words, so sel() is word-valued by
    # construction; reducing here keeps that true for any base contents.
    return _w(m.read(_w(a)))


def _ev_add(a: int, b: int) -> int:
    return a + b


def _ev_sub(a: int, b: int) -> int:
    return a - b


def _ev_mul(a: int, b: int) -> int:
    return a * b


def _ev_upd(m: _Memory, a: int, v: int) -> _Memory:
    return m.write(_w(a), _w(v))


@dataclass(frozen=True, slots=True)
class _OpSpec:
    arity: int
    evaluate: Callable


#: Operator table.  ``sel``/``upd`` take a memory as first argument; every
#: other operator maps integers to an integer.
OPS: dict[str, _OpSpec] = {
    "add64": _OpSpec(2, _ev_add64),
    "sub64": _OpSpec(2, _ev_sub64),
    "mul64": _OpSpec(2, _ev_mul64),
    "and64": _OpSpec(2, _ev_and64),
    "or64": _OpSpec(2, _ev_or64),
    "xor64": _OpSpec(2, _ev_xor64),
    "sll64": _OpSpec(2, _ev_sll64),
    "srl64": _OpSpec(2, _ev_srl64),
    "mod64": _OpSpec(1, _ev_mod64),
    "cmpeq": _OpSpec(2, _ev_cmpeq),
    "cmpult": _OpSpec(2, _ev_cmpult),
    "cmpule": _OpSpec(2, _ev_cmpule),
    "extbl": _OpSpec(2, _ev_extbl),
    "extwl": _OpSpec(2, _ev_extwl),
    "extll": _OpSpec(2, _ev_extll),
    "sel": _OpSpec(2, _ev_sel),
    "upd": _OpSpec(3, _ev_upd),
    # Pure (unbounded) integer arithmetic.  These never appear in VCs; the
    # prover introduces them when it can show a machine operation did not
    # wrap (e.g. the add64_exact rule), after which plain linear arithmetic
    # applies.
    "add": _OpSpec(2, _ev_add),
    "sub": _OpSpec(2, _ev_sub),
    "mul": _OpSpec(2, _ev_mul),
}


def _coerce(value: int | Term) -> Term:
    if isinstance(value, int):
        return Int(value)
    return value


def add64(a: int | Term, b: int | Term) -> App:
    """Two's-complement 64-bit addition: ``(a + b) mod 2**64``."""
    return App("add64", (_coerce(a), _coerce(b)))


def sub64(a: int | Term, b: int | Term) -> App:
    """Two's-complement 64-bit subtraction."""
    return App("sub64", (_coerce(a), _coerce(b)))


def mul64(a: int | Term, b: int | Term) -> App:
    """64-bit multiplication (low word)."""
    return App("mul64", (_coerce(a), _coerce(b)))


def and64(a: int | Term, b: int | Term) -> App:
    """Bitwise AND on 64-bit words."""
    return App("and64", (_coerce(a), _coerce(b)))


def or64(a: int | Term, b: int | Term) -> App:
    """Bitwise OR on 64-bit words."""
    return App("or64", (_coerce(a), _coerce(b)))


def xor64(a: int | Term, b: int | Term) -> App:
    """Bitwise XOR on 64-bit words."""
    return App("xor64", (_coerce(a), _coerce(b)))


def sll64(a: int | Term, b: int | Term) -> App:
    """Logical shift left; only the low 6 bits of the count are used."""
    return App("sll64", (_coerce(a), _coerce(b)))


def srl64(a: int | Term, b: int | Term) -> App:
    """Logical shift right; only the low 6 bits of the count are used."""
    return App("srl64", (_coerce(a), _coerce(b)))


def mod64(a: int | Term) -> App:
    """``a mod 2**64`` — the word-value of an arbitrary integer."""
    return App("mod64", (_coerce(a),))


def cmpeq(a: int | Term, b: int | Term) -> App:
    """Value-level equality test: 1 if the words are equal, else 0."""
    return App("cmpeq", (_coerce(a), _coerce(b)))


def cmpult(a: int | Term, b: int | Term) -> App:
    """Value-level unsigned less-than: 1 or 0."""
    return App("cmpult", (_coerce(a), _coerce(b)))


def cmpule(a: int | Term, b: int | Term) -> App:
    """Value-level unsigned less-or-equal: 1 or 0."""
    return App("cmpule", (_coerce(a), _coerce(b)))


def extbl(a: int | Term, b: int | Term) -> App:
    """Extract byte ``b & 7`` of word ``a`` (Alpha EXTBL)."""
    return App("extbl", (_coerce(a), _coerce(b)))


def extwl(a: int | Term, b: int | Term) -> App:
    """Extract the 16-bit word at byte offset ``b & 7`` (Alpha EXTWL)."""
    return App("extwl", (_coerce(a), _coerce(b)))


def extll(a: int | Term, b: int | Term) -> App:
    """Extract the 32-bit longword at byte offset ``b & 7`` (Alpha EXTLL)."""
    return App("extll", (_coerce(a), _coerce(b)))


def add(a: int | Term, b: int | Term) -> App:
    """Pure (unbounded) integer addition."""
    return App("add", (_coerce(a), _coerce(b)))


def sub(a: int | Term, b: int | Term) -> App:
    """Pure (unbounded) integer subtraction."""
    return App("sub", (_coerce(a), _coerce(b)))


def mul(a: int | Term, b: int | Term) -> App:
    """Pure (unbounded) integer multiplication."""
    return App("mul", (_coerce(a), _coerce(b)))


def sel(memory: Term, address: int | Term) -> App:
    """Contents of ``address`` in memory state ``memory``."""
    return App("sel", (memory, _coerce(address)))


def upd(memory: Term, address: int | Term, value: int | Term) -> App:
    """Memory state after writing ``value`` at ``address``."""
    return App("upd", (memory, _coerce(address), _coerce(value)))


#: id-keyed cache for term_vars; values keep the key term alive.
_TERM_VARS_CACHE: dict[int, tuple] = {}


def term_vars(term: Term) -> frozenset[str]:
    """The set of variable names occurring in ``term`` (cached: terms are
    immutable and the prover asks constantly)."""
    if isinstance(term, Var):
        return frozenset((term.name,))
    if isinstance(term, Int):
        return frozenset()
    cached = _TERM_VARS_CACHE.get(id(term))
    if cached is not None:
        return cached[1]
    names = frozenset().union(*(term_vars(arg) for arg in term.args))
    if len(_TERM_VARS_CACHE) >= 500_000:
        _TERM_VARS_CACHE.clear()  # evict wholesale; never stop caching
    _TERM_VARS_CACHE[id(term)] = (term, names)
    return names


def term_size(term: Term) -> int:
    """Node count of a term, used in size accounting and tests."""
    if isinstance(term, (Int, Var)):
        return 1
    return 1 + sum(term_size(arg) for arg in term.args)


Env = Mapping[str, object]


def make_memory(contents: Mapping[int, int] | None = None) -> _Memory:
    """Build a memory value for use in evaluation environments."""
    return _Memory(contents)


def eval_term(term: Term, env: Env) -> object:
    """Evaluate ``term`` in ``env`` (variable name -> int or memory).

    Raises :class:`LogicError` if a variable is unbound.  Integer results
    are unbounded; machine operators internally reduce mod 2**64.
    """
    if isinstance(term, Int):
        return term.value
    if isinstance(term, Var):
        if term.name not in env:
            raise LogicError(f"unbound variable {term.name!r}")
        return env[term.name]
    spec = OPS[term.op]
    args = [eval_term(arg, env) for arg in term.args]
    return spec.evaluate(*args)


def all_subterms(term: Term) -> Iterable[Term]:
    """Yield every subterm of ``term``, including itself (pre-order)."""
    yield term
    if isinstance(term, App):
        for arg in term.args:
            yield from all_subterms(arg)
