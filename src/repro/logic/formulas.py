"""First-order formulas over :mod:`repro.logic.terms`.

The formula language is the one the paper's safety predicates live in:
truth/falsity, conjunction, disjunction, implication, universal
quantification, and atomic predicates.  Atoms are either integer
comparisons (``eq``/``ne``/``lt``/``le``/``gt``/``ge``, interpreted over the
unbounded integers) or the safety predicates ``rd``/``wr`` whose meaning is
supplied by the safety policy at evaluation time.

Negation is not a primitive: the paper's predicates only ever need ``ne``,
and leaving ``Not`` out keeps both the proof rules and the LF signature
smaller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, Union

from repro.errors import LogicError
from repro.logic.eqcache import dag_equal
from repro.logic.terms import Env, Term, eval_term, term_size, term_vars, _coerce


@dataclass(frozen=True, slots=True)
class Truth:
    """The always-true formula (the paper's trivial postcondition)."""


@dataclass(frozen=True, slots=True)
class Falsity:
    """The always-false formula."""


@dataclass(frozen=True, slots=True)
class And:
    left: "Formula"
    right: "Formula"
    _hash: int | None = field(default=None, init=False, compare=False,
                              repr=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("and", self.left, self.right))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, And):
            return NotImplemented
        return dag_equal(self, other,
                         lambda node: (node.left, node.right))



@dataclass(frozen=True, slots=True)
class Or:
    left: "Formula"
    right: "Formula"
    _hash: int | None = field(default=None, init=False, compare=False,
                              repr=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("or", self.left, self.right))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, Or):
            return NotImplemented
        return dag_equal(self, other,
                         lambda node: (node.left, node.right))



@dataclass(frozen=True, slots=True)
class Implies:
    left: "Formula"
    right: "Formula"
    _hash: int | None = field(default=None, init=False, compare=False,
                              repr=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("imp", self.left, self.right))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, Implies):
            return NotImplemented
        return dag_equal(self, other,
                         lambda node: (node.left, node.right))



@dataclass(frozen=True, slots=True)
class Forall:
    """Universal quantification over an integer-valued variable."""

    var: str
    body: "Formula"
    _hash: int | None = field(default=None, init=False, compare=False,
                              repr=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("all", self.var, self.body))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, Forall):
            return NotImplemented
        return dag_equal(self, other,
                         lambda node: (node.var, node.body))



#: Predicate table: name -> arity.  ``rd``/``wr`` are the abstract-machine
#: safety checks; their truth is policy-defined (see ``holds``).
PREDICATES: dict[str, int] = {
    "eq": 2,
    "ne": 2,
    "lt": 2,
    "le": 2,
    "gt": 2,
    "ge": 2,
    "rd": 1,
    "wr": 1,
}


@dataclass(frozen=True, slots=True)
class Atom:
    pred: str
    args: tuple[Term, ...]
    _hash: int | None = field(default=None, init=False, compare=False,
                              repr=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self.pred, self.args))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return dag_equal(self, other,
                         lambda node: (node.pred, node.args))


    def __post_init__(self) -> None:
        arity = PREDICATES.get(self.pred)
        if arity is None:
            raise LogicError(f"unknown predicate {self.pred!r}")
        if len(self.args) != arity:
            raise LogicError(
                f"predicate {self.pred!r} expects {arity} arguments, "
                f"got {len(self.args)}")


Formula = Union[Truth, Falsity, And, Or, Implies, Forall, Atom]


def eq(a: int | Term, b: int | Term) -> Atom:
    """``a = b`` over the integers."""
    return Atom("eq", (_coerce(a), _coerce(b)))


def ne(a: int | Term, b: int | Term) -> Atom:
    """``a != b`` over the integers."""
    return Atom("ne", (_coerce(a), _coerce(b)))


def lt(a: int | Term, b: int | Term) -> Atom:
    """``a < b`` over the integers."""
    return Atom("lt", (_coerce(a), _coerce(b)))


def le(a: int | Term, b: int | Term) -> Atom:
    """``a <= b`` over the integers."""
    return Atom("le", (_coerce(a), _coerce(b)))


def gt(a: int | Term, b: int | Term) -> Atom:
    """``a > b`` over the integers."""
    return Atom("gt", (_coerce(a), _coerce(b)))


def ge(a: int | Term, b: int | Term) -> Atom:
    """``a >= b`` over the integers."""
    return Atom("ge", (_coerce(a), _coerce(b)))


def rd(address: int | Term) -> Atom:
    """It is safe to read the 64-bit word at ``address``."""
    return Atom("rd", (_coerce(address),))


def wr(address: int | Term) -> Atom:
    """It is safe to write the 64-bit word at ``address``."""
    return Atom("wr", (_coerce(address),))


def conj(formulas: Sequence[Formula]) -> Formula:
    """Right-nested conjunction of a sequence; ``Truth()`` if empty."""
    if not formulas:
        return Truth()
    result = formulas[-1]
    for formula in reversed(formulas[:-1]):
        result = And(formula, result)
    return result


def conjuncts(formula: Formula) -> list[Formula]:
    """Flatten nested conjunctions into a list."""
    if isinstance(formula, And):
        return conjuncts(formula.left) + conjuncts(formula.right)
    return [formula]


#: id-keyed cache for formula_vars; values keep the key formula alive.
_FORMULA_VARS_CACHE: dict[int, tuple] = {}


def formula_vars(formula: Formula) -> frozenset[str]:
    """Free variable names of ``formula`` (cached on identity)."""
    if isinstance(formula, (Truth, Falsity)):
        return frozenset()
    cached = _FORMULA_VARS_CACHE.get(id(formula))
    if cached is not None:
        return cached[1]
    if isinstance(formula, Atom):
        names = frozenset().union(*(term_vars(arg)
                                    for arg in formula.args))
    elif isinstance(formula, (And, Or, Implies)):
        names = formula_vars(formula.left) | formula_vars(formula.right)
    elif isinstance(formula, Forall):
        names = formula_vars(formula.body) - {formula.var}
    else:
        raise LogicError(f"not a formula: {formula!r}")
    if len(_FORMULA_VARS_CACHE) >= 500_000:
        _FORMULA_VARS_CACHE.clear()  # evict wholesale; never stop caching
    _FORMULA_VARS_CACHE[id(formula)] = (formula, names)
    return names


def formula_size(formula: Formula) -> int:
    """Node count of a formula (atoms count their term nodes)."""
    if isinstance(formula, (Truth, Falsity)):
        return 1
    if isinstance(formula, Atom):
        return 1 + sum(term_size(arg) for arg in formula.args)
    if isinstance(formula, (And, Or, Implies)):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if isinstance(formula, Forall):
        return 1 + formula_size(formula.body)
    raise LogicError(f"not a formula: {formula!r}")


_COMPARISONS: dict[str, Callable[[int, int], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def holds(formula: Formula, env: Env,
          can_read: Callable[[int], bool] | None = None,
          can_write: Callable[[int], bool] | None = None,
          forall_samples: Iterable[int] | None = None) -> bool:
    """Semantic truth of ``formula`` in ``env``.

    ``rd``/``wr`` atoms are decided by the supplied policy callbacks; if a
    callback is missing, evaluating the corresponding atom raises
    :class:`LogicError` (tests must say what they mean).

    ``Forall`` cannot be decided exactly over the integers, so it is checked
    over ``forall_samples`` (default: a small set of boundary values).  That
    makes :func:`holds` a *refutation-complete sampler*, which is exactly
    what the property-based soundness tests need: a formula reported false
    is definitely false, one reported true was merely not refuted.
    """
    if forall_samples is None:
        forall_samples = (0, 1, 7, 8, 63, 64, (1 << 63) - 1, (1 << 64) - 1)
    if isinstance(formula, Truth):
        return True
    if isinstance(formula, Falsity):
        return False
    if isinstance(formula, And):
        return (holds(formula.left, env, can_read, can_write, forall_samples)
                and holds(formula.right, env, can_read, can_write,
                          forall_samples))
    if isinstance(formula, Or):
        return (holds(formula.left, env, can_read, can_write, forall_samples)
                or holds(formula.right, env, can_read, can_write,
                         forall_samples))
    if isinstance(formula, Implies):
        if not holds(formula.left, env, can_read, can_write, forall_samples):
            return True
        return holds(formula.right, env, can_read, can_write, forall_samples)
    if isinstance(formula, Forall):
        for value in forall_samples:
            extended = dict(env)
            extended[formula.var] = value
            if not holds(formula.body, extended, can_read, can_write,
                         forall_samples):
                return False
        return True
    if isinstance(formula, Atom):
        if formula.pred in _COMPARISONS:
            a = eval_term(formula.args[0], env)
            b = eval_term(formula.args[1], env)
            return _COMPARISONS[formula.pred](a, b)
        if formula.pred == "rd":
            if can_read is None:
                raise LogicError("rd() atom evaluated without a policy")
            return can_read(eval_term(formula.args[0], env))
        if formula.pred == "wr":
            if can_write is None:
                raise LogicError("wr() atom evaluated without a policy")
            return can_write(eval_term(formula.args[0], env))
    raise LogicError(f"not a formula: {formula!r}")
