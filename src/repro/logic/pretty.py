"""Pretty-printing of terms and formulas in the paper's notation.

The output is for humans (examples, error messages, EXPERIMENTS.md); the
canonical machine-readable form is the LF encoding.  The printer is total:
any well-formed term or formula prints without error, and distinct
structures print distinctly enough for debugging (parentheses are inserted
conservatively rather than minimally).
"""

from __future__ import annotations

from repro.logic.formulas import (
    And,
    Atom,
    Falsity,
    Forall,
    Formula,
    Implies,
    Or,
    Truth,
)
from repro.logic.terms import App, Int, Term, Var

_INFIX = {
    "add64": "(+)",
    "sub64": "(-)",
    "mul64": "(*)",
    "and64": "&",
    "or64": "|",
    "xor64": "^",
    "sll64": "<<",
    "srl64": ">>",
    "add": "+",
    "sub": "-",
    "mul": "*",
}

_ATOM_INFIX = {
    "eq": "=",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
}


#: id-keyed render caches (the prover sorts by rendered text constantly;
#: the value tuple keeps the key object alive so ids stay unique).
_TERM_CACHE: dict[int, tuple] = {}
_FORMULA_CACHE: dict[int, tuple] = {}


def pp_term(term: Term) -> str:
    """Render a term as a string."""
    if isinstance(term, Int):
        return str(term.value)
    if isinstance(term, Var):
        return term.name
    cached = _TERM_CACHE.get(id(term))
    if cached is not None:
        return cached[1]
    rendered = _pp_app(term)
    if len(_TERM_CACHE) >= 300_000:
        _TERM_CACHE.clear()  # evict wholesale; never stop caching
    _TERM_CACHE[id(term)] = (term, rendered)
    return rendered


def _pp_app(term: App) -> str:
    if term.op in _INFIX:
        left = pp_term(term.args[0])
        right = pp_term(term.args[1])
        return f"({left} {_INFIX[term.op]} {right})"
    if term.op == "mod64":
        return f"({pp_term(term.args[0])} mod 2^64)"
    rendered = ", ".join(pp_term(arg) for arg in term.args)
    return f"{term.op}({rendered})"


def pp_formula(formula: Formula) -> str:
    """Render a formula as a string."""
    if isinstance(formula, Truth):
        return "true"
    if isinstance(formula, Falsity):
        return "false"
    cached = _FORMULA_CACHE.get(id(formula))
    if cached is not None:
        return cached[1]
    rendered = _pp_formula_node(formula)
    if len(_FORMULA_CACHE) >= 300_000:
        _FORMULA_CACHE.clear()  # evict wholesale; never stop caching
    _FORMULA_CACHE[id(formula)] = (formula, rendered)
    return rendered


def _pp_formula_node(formula: Formula) -> str:
    if isinstance(formula, Atom):
        if formula.pred in _ATOM_INFIX:
            left = pp_term(formula.args[0])
            right = pp_term(formula.args[1])
            return f"{left} {_ATOM_INFIX[formula.pred]} {right}"
        rendered = ", ".join(pp_term(arg) for arg in formula.args)
        return f"{formula.pred}({rendered})"
    if isinstance(formula, And):
        return f"({pp_formula(formula.left)} /\\ {pp_formula(formula.right)})"
    if isinstance(formula, Or):
        return f"({pp_formula(formula.left)} \\/ {pp_formula(formula.right)})"
    if isinstance(formula, Implies):
        return f"({pp_formula(formula.left)} => {pp_formula(formula.right)})"
    if isinstance(formula, Forall):
        return f"(ALL {formula.var}. {pp_formula(formula.body)})"
    raise TypeError(f"not a formula: {formula!r}")
