"""The SFI segment safety policy, and kernel-side setup for SFI runs.

The paper certifies its SFI-rewritten filters with PCC: "the precondition
for this experiment says that it is safe to read from any aligned address
that is in the same 2048-byte segment with the packet start address."
That is exactly :func:`sfi_policy`'s precondition; writes stay confined to
the 16-byte scratch segment.

Because SFI grants the whole segment, the kernel must map packets into a
full 2048-byte buffer (zero-padded) on a 2048-byte boundary — the
difference from the BPF model that makes some filters behave differently
under the two semantics (§3.1).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.alpha.machine import Memory
from repro.baselines.sfi.rewrite import READ_SEGMENT_SIZE
from repro.filters.policy import SCRATCH_SIZE
from repro.logic.formulas import Formula, Forall, Implies, conj, eq, ge, lt, rd, wr
from repro.logic.terms import Int, Var, WORD_MOD, add64, and64
from repro.vcgen.policy import SafetyPolicy, word_identity

#: 2048-aligned packet segment base used for SFI executions.
SFI_PACKET_BASE = 0x0003_0000
SFI_SCRATCH_BASE = 0x0004_0000

_SEGMENT_MASK = Int((WORD_MOD - READ_SEGMENT_SIZE) % WORD_MOD)  # ~2047


def sfi_precondition() -> Formula:
    """Reads anywhere in the packet's 2048-byte segment; writes (and
    reads) in the 16-byte scratch segment."""
    r1, r2, r3 = Var("r1"), Var("r2"), Var("r3")
    i, j = Var("i"), Var("j")
    segment_base = and64(r1, _SEGMENT_MASK)
    read_guard = conj([ge(i, 0), lt(i, READ_SEGMENT_SIZE),
                       eq(and64(i, 7), 0)])
    scratch_guard = conj([ge(j, 0), lt(j, SCRATCH_SIZE),
                          eq(and64(j, 7), 0)])
    return conj([
        word_identity(r1),
        word_identity(r2),
        word_identity(r3),
        eq(and64(r3, 15), 0),
        Forall("i", Implies(read_guard, rd(add64(segment_base, i)))),
        Forall("j", Implies(scratch_guard, rd(add64(r3, j)))),
        Forall("j", Implies(scratch_guard, wr(add64(r3, j)))),
    ])


def sfi_policy() -> SafetyPolicy:
    """The SFI segment policy, with its semantic interpretation."""

    def make_checkers(registers: Mapping[int, int],
                      read_word: Callable[[int], int]):
        segment = registers[1] & ~(READ_SEGMENT_SIZE - 1)
        scratch = registers[3]

        def can_read(address: int) -> bool:
            if segment <= address < segment + READ_SEGMENT_SIZE:
                return True
            return scratch <= address < scratch + SCRATCH_SIZE

        def can_write(address: int) -> bool:
            return scratch <= address < scratch + SCRATCH_SIZE

        return can_read, can_write

    return SafetyPolicy(
        name="sfi-segment",
        precondition=sfi_precondition(),
        make_checkers=make_checkers,
    )


def sfi_memory(packet: bytes,
               packet_base: int = SFI_PACKET_BASE,
               scratch_base: int = SFI_SCRATCH_BASE) -> Memory:
    """SFI-style mapping: the packet at a 2048-aligned base inside a full
    zero-padded segment, plus the scratch area."""
    if packet_base % READ_SEGMENT_SIZE:
        raise ValueError("SFI packet base must be 2048-byte aligned")
    if len(packet) > READ_SEGMENT_SIZE:
        raise ValueError("packet larger than the SFI segment")
    segment = bytearray(READ_SEGMENT_SIZE)
    segment[:len(packet)] = packet
    memory = Memory()
    memory.map_region(packet_base, segment, writable=False, name="packet")
    memory.map_region(scratch_base, bytes(SCRATCH_SIZE), writable=True,
                      name="scratch")
    return memory


def reusable_sfi_memory(packet_base: int = SFI_PACKET_BASE,
                        scratch_base: int = SFI_SCRATCH_BASE,
                        ):
    """One SFI-style :class:`Memory` reused across a whole trace.

    Returns ``(memory, rebind)`` as
    :func:`repro.filters.policy.reusable_packet_memory` does; ``rebind``
    copies the packet into the resident 2048-byte segment, zeroes the
    segment tail, and re-zeroes the scratch area.
    """
    if packet_base % READ_SEGMENT_SIZE:
        raise ValueError("SFI packet base must be 2048-byte aligned")
    memory = Memory()
    memory.map_region(packet_base, bytes(READ_SEGMENT_SIZE),
                      writable=False, name="packet")
    memory.map_region(scratch_base, bytes(SCRATCH_SIZE), writable=True,
                      name="scratch")
    segment = memory.region("packet")
    scratch = memory.region("scratch")
    zero_segment = bytes(READ_SEGMENT_SIZE)
    zero_scratch = bytes(SCRATCH_SIZE)

    def rebind(packet: bytes) -> None:
        if len(packet) > READ_SEGMENT_SIZE:
            raise ValueError("packet larger than the SFI segment")
        size = len(packet)
        segment[:size] = packet
        segment[size:] = zero_segment[size:]
        scratch[:] = zero_scratch

    return memory, rebind


def sfi_registers(packet_length: int,
                  packet_base: int = SFI_PACKET_BASE,
                  scratch_base: int = SFI_SCRATCH_BASE) -> dict[int, int]:
    return {1: packet_base, 2: packet_length, 3: scratch_base}
