"""Software Fault Isolation (Wahbe et al. 1993) — code-editing baseline.

The rewriter takes an Alpha program and inserts the classic sandboxing
sequence before every memory operation, forcing each effective address
into a fixed segment (reads: the 2048-byte packet segment; writes: the
scratch segment).  The paper's concessions are reproduced: packets are
assumed allocated on a 2048-byte boundary and the filter may safely read
the whole segment regardless of packet size — which is why SFI and BPF
filter semantics can disagree at the boundary (§3.1).

:mod:`repro.baselines.sfi.policy` defines the SFI segment safety policy,
against which the *rewritten* binaries can themselves be certified as PCC
binaries — the paper's "we achieve the same effect as an SFI load-time
validator but using the universal typechecking algorithm".
"""

from repro.baselines.sfi.rewrite import SfiConfig, sfi_rewrite
from repro.baselines.sfi.policy import sfi_policy, sfi_memory, sfi_registers

__all__ = ["SfiConfig", "sfi_rewrite", "sfi_policy", "sfi_memory",
           "sfi_registers"]
