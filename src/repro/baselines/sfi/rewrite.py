"""The SFI binary rewriter.

Implements the Wahbe et al. sandboxing transformation on our Alpha subset:
every load's effective address is forced into the 2048-byte *read segment*
(the paper's concession: packets are allocated on 2048-byte boundaries and
the whole segment is readable) and every store's into the 16-byte scratch
segment.  The sequences are the classic three instructions per access::

    LDA   r10, disp(base)   ; effective address
    AND   r10, r8, r10      ; offset within segment, word-aligned
    BIS   r10, r9, r10      ; OR in the segment base
    LDQ   rd, 0(r10)

with a four-instruction preamble materializing the mask (``r8``), the read
segment base (``r9 := r1 & ~2047``); stores use the 8-bit literal mask and
the scratch base still live in ``r3``.  Registers r8-r10 are dedicated —
the rewriter refuses programs that use them, exactly as a real SFI
toolchain reserves sandbox registers.

Branch displacements are recomputed after expansion.  The output is a
plain program: it runs on the concrete machine (paying for the extra
instructions) and can itself be certified against the SFI policy
(:mod:`repro.baselines.sfi.policy`) — the paper's PCC-validates-SFI
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alpha.isa import (
    Br,
    Branch,
    Instruction,
    Lda,
    Ldq,
    Operate,
    Program,
    Reg,
    Stq,
    branch_target,
    read_registers,
    validate_program,
    written_register,
)
from repro.errors import SfiError

#: Dedicated sandbox registers (mask, read-segment base, scratch temp).
MASK_REG = 8
SEGBASE_REG = 9
TEMP_REG = 10

#: Read-segment geometry (the paper's 2048-byte packet segments).
READ_SEGMENT_SIZE = 2048
READ_OFFSET_MASK = READ_SEGMENT_SIZE - 8  # 2040: in-segment, 8-aligned

#: Write-segment geometry (the 16-byte BPF scratch memory).
WRITE_OFFSET_MASK = 8  # 16-byte segment, 8-aligned: offsets {0, 8}


@dataclass(frozen=True)
class SfiConfig:
    """Which accesses to sandbox.

    The paper discusses both flavors: write-only protection is cheap;
    checking reads too "can amount to 20%" overhead.  Figure 8's SFI bars
    check both (the packet-filter policy restricts reads), so that is the
    default.
    """

    sandbox_reads: bool = True
    sandbox_writes: bool = True


def _preamble(config: SfiConfig) -> list[Instruction]:
    temp = Reg(TEMP_REG)
    out: list[Instruction] = [
        Operate("SUBQ", temp, temp, temp),           # r10 := 0
    ]
    if config.sandbox_reads:
        out.append(Lda(Reg(MASK_REG), READ_OFFSET_MASK, temp))
        out.append(Lda(Reg(SEGBASE_REG), -READ_SEGMENT_SIZE, temp))
        out.append(Operate("AND", Reg(1), Reg(SEGBASE_REG),
                           Reg(SEGBASE_REG)))       # r9 := r1 & ~2047
    return out


def _sandboxed_load(instruction: Ldq) -> list[Instruction]:
    temp = Reg(TEMP_REG)
    return [
        Lda(temp, instruction.disp, instruction.rs),
        Operate("AND", temp, Reg(MASK_REG), temp),
        Operate("BIS", temp, Reg(SEGBASE_REG), temp),
        Ldq(instruction.rd, 0, temp),
    ]


def _sandboxed_store(instruction: Stq) -> list[Instruction]:
    from repro.alpha.isa import Lit

    temp = Reg(TEMP_REG)
    return [
        Lda(temp, instruction.disp, instruction.rd),
        Operate("AND", temp, Lit(WRITE_OFFSET_MASK), temp),
        Operate("BIS", temp, Reg(3), temp),
        Stq(instruction.rs, 0, temp),
    ]


def sfi_rewrite(program: Program,
                config: SfiConfig | None = None) -> Program:
    """Sandbox every memory operation of ``program``.

    Raises :class:`SfiError` if the program uses the dedicated registers
    or clobbers the live segment bases (r1 before the preamble reads it,
    r3 anywhere if stores are sandboxed).
    """
    config = config or SfiConfig()
    reserved = {MASK_REG, SEGBASE_REG, TEMP_REG}
    stores_present = any(isinstance(i, Stq) for i in program)
    for pc, instruction in enumerate(program):
        used = read_registers(instruction)
        target = written_register(instruction)
        if target is not None:
            used.add(target)
        if used & reserved:
            raise SfiError(
                f"pc {pc}: program uses a dedicated sandbox register "
                f"(r8-r10 are reserved by the SFI rewriter)")
        if (config.sandbox_writes and stores_present
                and written_register(instruction) == 3):
            raise SfiError(
                f"pc {pc}: program overwrites r3, the live scratch base")

    # First pass: expand instructions, remembering where each old pc lands.
    preamble = _preamble(config)
    expanded: list[list[Instruction]] = []
    for instruction in program:
        if isinstance(instruction, Ldq) and config.sandbox_reads:
            expanded.append(_sandboxed_load(instruction))
        elif isinstance(instruction, Stq) and config.sandbox_writes:
            expanded.append(_sandboxed_store(instruction))
        else:
            expanded.append([instruction])

    new_start: list[int] = []
    position = len(preamble)
    for group in expanded:
        new_start.append(position)
        position += len(group)
    total = position

    # Second pass: fix branch displacements.
    out: list[Instruction] = list(preamble)
    for pc, group in enumerate(expanded):
        for instruction in group:
            if isinstance(instruction, (Branch, Br)):
                old_target = branch_target(pc, instruction)
                if old_target < len(new_start):
                    new_target = new_start[old_target]
                else:  # pragma: no cover - validate_program forbids
                    new_target = total
                here = len(out)
                offset = new_target - (here + 1)
                if isinstance(instruction, Branch):
                    instruction = Branch(instruction.name,
                                         instruction.rs, offset)
                else:
                    instruction = Br(offset)
            out.append(instruction)

    result = tuple(out)
    validate_program(result)
    return result
