"""A BPF-to-Alpha compiler ("JIT") whose output is certifiable PCC.

§3.1 of the paper: "It is possible, of course, to eliminate the need for
interpretation.  For example, we could replace the packet-filter
interpreter with a compiler ...  The problem here is the startup cost and
complexity of compilation" — and, unlike PCC, a JIT must itself be
trusted.  This module closes the loop the paper hints at: it compiles
classic BPF to our Alpha subset with the BPF run-time checks made
explicit, which means the output can be *certified against the
packet-filter policy* — the kernel then needs to trust neither the BPF
program nor the compiler.

Compilation model (naive, as a first-generation JIT would be):

* ``A`` lives in r4, ``X`` in r5; both kept 32-bit by masking through a
  shift pair after every ALU op (the constant 0xFFFFFFFF does not fit an
  operate literal);
* each packet load bounds-checks ``offset + width <= len`` and then
  assembles the big-endian value byte by byte from aligned 64-bit loads
  (the Alpha 21064 has no byte loads);
* a failed check branches to ``fail`` and rejects, exactly the
  interpreter's semantics;
* scratch cells M[0] and M[1] map to the policy's 16-byte scratch area;
  higher indices are rejected (the paper's filters use none at all);
* BPF_DIV and BPF_NEG are not supported (no divide instruction in the
  subset; none of the classic filters need them).

The compiled programs agree with the interpreter packet-for-packet (see
``tests/baselines/test_bpf_jit.py``) and certify automatically.
"""

from __future__ import annotations

from repro.alpha.isa import Program
from repro.alpha.parser import parse_program
from repro.baselines.bpf.isa import (
    BPF_A,
    BPF_ABS,
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_B,
    BPF_DIV,
    BPF_H,
    BPF_IMM,
    BPF_IND,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_LD,
    BPF_LDX,
    BPF_LEN,
    BPF_LSH,
    BPF_MEM,
    BPF_MISC,
    BPF_MSH,
    BPF_MUL,
    BPF_NEG,
    BPF_OR,
    BPF_RET,
    BPF_RSH,
    BPF_ST,
    BPF_STX,
    BPF_SUB,
    BPF_TAX,
    BPF_TXA,
    BPF_W,
    BpfInstruction,
)
from repro.baselines.bpf.verify import verify_bpf
from repro.errors import BpfError

_ACC = "r4"
_IDX = "r5"
_T0 = "r6"   # effective offsets / byte assembly
_T1 = "r7"   # word scratch
_T2 = "r8"   # second operand / constants

#: Scratch cells the 16-byte policy area can hold.
_MAX_SCRATCH_CELL = 2


class _Jit:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def op(self, text: str) -> None:
        self.lines.append(f"        {text}")

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def constant(self, value: int, reg: str) -> None:
        """Materialize an unsigned 32-bit constant."""
        if not 0 <= value < (1 << 32):
            raise BpfError(f"constant {value:#x} out of range")
        if value >= (1 << 31):
            # LDAH sign-extends; build the top bit with a shift instead.
            self.constant(value >> 16, reg)
            self.op(f"SLL {reg}, 16, {reg}")
            low = value & 0xFFFF
            if low:
                self.constant_into_temp_and_or(low, reg)
            return
        low = value & 0xFFFF
        if low >= 0x8000:
            low -= 0x10000
        high = (value - low) >> 16
        self.op(f"SUBQ {reg}, {reg}, {reg}")
        if high:
            self.op(f"LDAH {reg}, {high}({reg})")
        if low or not high:
            self.op(f"LDA {reg}, {low}({reg})")

    def constant_into_temp_and_or(self, value: int, reg: str) -> None:
        if reg == _T1:
            raise BpfError("temp collision in constant synthesis")
        self.constant(value, _T1)
        self.op(f"BIS {reg}, {_T1}, {reg}")

    def mask32(self, reg: str) -> None:
        self.op(f"SLL {reg}, 32, {reg}")
        self.op(f"SRL {reg}, 32, {reg}")

    def checked_load(self, offset_reg_setup, width: int,
                     target: str) -> None:
        """Bounds-check then load ``width`` big-endian bytes.

        ``offset_reg_setup`` emits code leaving the byte offset in _T0.
        """
        offset_reg_setup()
        # check: offset + width <= len  i.e.  offset + (width-1) < len
        if width > 1:
            self.op(f"ADDQ {_T0}, {width - 1}, {_T1}")
        else:
            self.op(f"ADDQ {_T0}, 0, {_T1}")
        self.op(f"CMPULT {_T1}, r2, {_T1}")
        self.op(f"BEQ {_T1}, fail")
        # assemble big-endian, byte by byte
        self.op(f"SUBQ {target}, {target}, {target}")
        for position in range(width):
            self.op(f"ADDQ {_T0}, {position}, {_T1}")
            self.op(f"SRL {_T1}, 3, {_T2}")
            self.op(f"SLL {_T2}, 3, {_T2}")
            self.op(f"ADDQ r1, {_T2}, {_T2}")
            self.op(f"LDQ {_T2}, 0({_T2})")
            self.op(f"EXTBL {_T2}, {_T1}, {_T1}")
            self.op(f"SLL {target}, 8, {target}")
            self.op(f"BIS {target}, {_T1}, {target}")

    def scratch_address(self, cell: int) -> str:
        if cell >= _MAX_SCRATCH_CELL:
            raise BpfError(
                f"scratch cell M[{cell}] does not fit the 16-byte policy "
                f"scratch area")
        return f"{8 * cell}(r3)"


def compile_bpf(program: list[BpfInstruction]) -> Program:
    """Compile a verified BPF program to certifiable Alpha code."""
    verify_bpf(program)
    jit = _Jit()

    for pc, instruction in enumerate(program):
        jit.label(f"i{pc}")
        _compile_instruction(jit, pc, instruction)

    jit.label("fail")
    jit.op("SUBQ r0, r0, r0")
    jit.op("RET")
    return parse_program("\n".join(jit.lines))


def _compile_instruction(jit: _Jit, pc: int,
                         instruction: BpfInstruction) -> None:
    code = instruction.code
    klass = code & 0x07
    k = instruction.k

    if klass == BPF_RET:
        if code & BPF_A:
            jit.op(f"ADDQ {_ACC}, 0, r0")
        else:
            jit.constant(k & 0xFFFFFFFF, "r0")
        jit.op("RET")
        return

    if klass in (BPF_LD, BPF_LDX):
        target = _ACC if klass == BPF_LD else _IDX
        mode = code & 0xE0
        width = {BPF_W: 4, BPF_H: 2, BPF_B: 1}[code & 0x18]
        if mode == BPF_IMM:
            jit.constant(k, target)
        elif mode == BPF_LEN:
            jit.op(f"ADDQ r2, 0, {target}")
        elif mode == BPF_MEM:
            jit.op(f"LDQ {target}, {jit.scratch_address(k)}")
        elif mode == BPF_MSH and klass == BPF_LDX:
            jit.checked_load(lambda: jit.constant(k, _T0), 1, _IDX)
            jit.op(f"AND {_IDX}, 15, {_IDX}")
            jit.op(f"SLL {_IDX}, 2, {_IDX}")
        elif mode == BPF_ABS:
            jit.checked_load(lambda: jit.constant(k, _T0), width, target)
        elif mode == BPF_IND:
            def offset_setup():
                jit.constant(k, _T0)
                jit.op(f"ADDQ {_T0}, {_IDX}, {_T0}")
            jit.checked_load(offset_setup, width, target)
        else:
            raise BpfError(f"pc {pc}: unsupported load mode {mode:#x}")
        return

    if klass == BPF_ST:
        jit.op(f"STQ {_ACC}, {jit.scratch_address(k)}")
        return
    if klass == BPF_STX:
        jit.op(f"STQ {_IDX}, {jit.scratch_address(k)}")
        return

    if klass == BPF_ALU:
        operation = code & 0xF0
        if code & 0x08:  # X operand
            operand = _IDX
        else:
            jit.constant(k, _T2)
            operand = _T2
        mnemonic = {BPF_ADD: "ADDQ", BPF_SUB: "SUBQ", BPF_MUL: "MULQ",
                    BPF_OR: "BIS", BPF_AND: "AND", BPF_LSH: "SLL",
                    BPF_RSH: "SRL"}.get(operation)
        if mnemonic is None:
            raise BpfError(
                f"pc {pc}: ALU op {operation:#x} unsupported by the JIT "
                f"(BPF_DIV/BPF_NEG)")
        jit.op(f"{mnemonic} {_ACC}, {operand}, {_ACC}")
        jit.mask32(_ACC)
        return

    if klass == BPF_JMP:
        operation = code & 0xF0
        if operation == BPF_JA:
            jit.op(f"BR i{pc + 1 + k}")
            return
        true_label = f"i{pc + 1 + instruction.jt}"
        false_label = f"i{pc + 1 + instruction.jf}"
        if code & 0x08:
            operand = _IDX
        else:
            jit.constant(k, _T2)
            operand = _T2
        if operation == BPF_JEQ:
            jit.op(f"CMPEQ {_ACC}, {operand}, {_T1}")
        elif operation == BPF_JGT:
            jit.op(f"CMPULT {operand}, {_ACC}, {_T1}")
        elif operation == BPF_JGE:
            jit.op(f"CMPULE {operand}, {_ACC}, {_T1}")
        elif operation == BPF_JSET:
            jit.op(f"AND {_ACC}, {operand}, {_T1}")
        else:
            raise BpfError(f"pc {pc}: jump op {operation:#x} unsupported")
        jit.op(f"BNE {_T1}, {true_label}")
        jit.op(f"BR {false_label}")
        return

    if klass == BPF_MISC:
        if code & 0xF8 == BPF_TXA:
            jit.op(f"ADDQ {_IDX}, 0, {_ACC}")
        else:
            jit.op(f"ADDQ {_ACC}, 0, {_IDX}")
        return

    raise BpfError(f"pc {pc}: unsupported class {klass}")
