"""Classic BPF instruction set (the 1993 USENIX paper's encoding).

An instruction is ``(code, jt, jf, k)``.  The 16-bit ``code`` is built
from class / size / mode / operation bit-fields exactly as in
``net/bpf.h``; conditional jumps carry true/false displacement bytes; ``k``
is the 32-bit immediate.  The helper constructors below are the
"assembler" — BPF programs in this repository are written as lists of
helper calls, which reads close to ``bpf_asm`` syntax.

The VM state is the 32-bit accumulator ``A``, the index register ``X``,
and sixteen 32-bit scratch memory cells ``M[0..15]`` — the same scratch
memory the paper's safety policy models.
"""

from __future__ import annotations

from dataclasses import dataclass

# Instruction classes.
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_RET = 0x06
BPF_MISC = 0x07

# Size field (loads).
BPF_W = 0x00   # 32-bit word
BPF_H = 0x08   # 16-bit halfword
BPF_B = 0x10   # byte

# Mode field.
BPF_IMM = 0x00
BPF_ABS = 0x20
BPF_IND = 0x40
BPF_MEM = 0x60
BPF_LEN = 0x80
BPF_MSH = 0xA0  # the IP-header-length idiom: X := 4 * (pkt[k] & 0xf)

# ALU/JMP operations.
BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_OR = 0x40
BPF_AND = 0x50
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_NEG = 0x80

BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40

# Source field.
BPF_K = 0x00
BPF_X = 0x08

# RET sources.
BPF_A = 0x10

# MISC operations.
BPF_TAX = 0x00
BPF_TXA = 0x80

#: Number of scratch memory cells.
BPF_MEMWORDS = 16


@dataclass(frozen=True, slots=True)
class BpfInstruction:
    code: int
    jt: int = 0
    jf: int = 0
    k: int = 0

    def klass(self) -> int:
        return self.code & 0x07


def ld_w_abs(k: int) -> BpfInstruction:
    """A := pkt[k:k+4] (big-endian)."""
    return BpfInstruction(BPF_LD | BPF_W | BPF_ABS, k=k)


def ld_h_abs(k: int) -> BpfInstruction:
    """A := pkt[k:k+2] (big-endian)."""
    return BpfInstruction(BPF_LD | BPF_H | BPF_ABS, k=k)


def ld_b_abs(k: int) -> BpfInstruction:
    """A := pkt[k]."""
    return BpfInstruction(BPF_LD | BPF_B | BPF_ABS, k=k)


def ld_w_ind(k: int) -> BpfInstruction:
    """A := pkt[X+k : X+k+4]."""
    return BpfInstruction(BPF_LD | BPF_W | BPF_IND, k=k)


def ld_h_ind(k: int) -> BpfInstruction:
    """A := pkt[X+k : X+k+2]."""
    return BpfInstruction(BPF_LD | BPF_H | BPF_IND, k=k)


def ld_b_ind(k: int) -> BpfInstruction:
    """A := pkt[X+k]."""
    return BpfInstruction(BPF_LD | BPF_B | BPF_IND, k=k)


def ld_len() -> BpfInstruction:
    """A := packet length."""
    return BpfInstruction(BPF_LD | BPF_W | BPF_LEN)


def ld_imm(k: int) -> BpfInstruction:
    """A := k."""
    return BpfInstruction(BPF_LD | BPF_IMM, k=k)


def ld_mem(k: int) -> BpfInstruction:
    """A := M[k]."""
    return BpfInstruction(BPF_LD | BPF_MEM, k=k)


def ldx_imm(k: int) -> BpfInstruction:
    """X := k."""
    return BpfInstruction(BPF_LDX | BPF_W | BPF_IMM, k=k)


def ldx_msh(k: int) -> BpfInstruction:
    """X := 4 * (pkt[k] & 0xf) — the IP header-length idiom."""
    return BpfInstruction(BPF_LDX | BPF_B | BPF_MSH, k=k)


def ldx_len() -> BpfInstruction:
    """X := packet length."""
    return BpfInstruction(BPF_LDX | BPF_W | BPF_LEN)


def ldx_mem(k: int) -> BpfInstruction:
    """X := M[k]."""
    return BpfInstruction(BPF_LDX | BPF_W | BPF_MEM, k=k)


def st(k: int) -> BpfInstruction:
    """M[k] := A."""
    return BpfInstruction(BPF_ST, k=k)


def stx(k: int) -> BpfInstruction:
    """M[k] := X."""
    return BpfInstruction(BPF_STX, k=k)


def alu_add_k(k: int) -> BpfInstruction:
    return BpfInstruction(BPF_ALU | BPF_ADD | BPF_K, k=k)


def alu_and_k(k: int) -> BpfInstruction:
    return BpfInstruction(BPF_ALU | BPF_AND | BPF_K, k=k)


def alu_or_k(k: int) -> BpfInstruction:
    return BpfInstruction(BPF_ALU | BPF_OR | BPF_K, k=k)


def alu_lsh_k(k: int) -> BpfInstruction:
    return BpfInstruction(BPF_ALU | BPF_LSH | BPF_K, k=k)


def alu_rsh_k(k: int) -> BpfInstruction:
    return BpfInstruction(BPF_ALU | BPF_RSH | BPF_K, k=k)


def jmp_ja(k: int) -> BpfInstruction:
    """Unconditional forward jump by k instructions."""
    return BpfInstruction(BPF_JMP | BPF_JA, k=k)


def jeq(k: int, jt: int, jf: int) -> BpfInstruction:
    """if A == k goto +jt else goto +jf."""
    return BpfInstruction(BPF_JMP | BPF_JEQ | BPF_K, jt=jt, jf=jf, k=k)


def jgt(k: int, jt: int, jf: int) -> BpfInstruction:
    return BpfInstruction(BPF_JMP | BPF_JGT | BPF_K, jt=jt, jf=jf, k=k)


def jge(k: int, jt: int, jf: int) -> BpfInstruction:
    return BpfInstruction(BPF_JMP | BPF_JGE | BPF_K, jt=jt, jf=jf, k=k)


def jset(k: int, jt: int, jf: int) -> BpfInstruction:
    """if A & k goto +jt else goto +jf."""
    return BpfInstruction(BPF_JMP | BPF_JSET | BPF_K, jt=jt, jf=jf, k=k)


def ret_k(k: int) -> BpfInstruction:
    """Return the constant verdict k."""
    return BpfInstruction(BPF_RET | BPF_K, k=k)


def ret_a() -> BpfInstruction:
    """Return the accumulator."""
    return BpfInstruction(BPF_RET | BPF_A)


def tax() -> BpfInstruction:
    """X := A."""
    return BpfInstruction(BPF_MISC | BPF_TAX)


def txa() -> BpfInstruction:
    """A := X."""
    return BpfInstruction(BPF_MISC | BPF_TXA)
