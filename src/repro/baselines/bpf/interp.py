"""The BPF interpreter with run-time safety checks.

Follows the BSD semantics the paper adopts for every baseline: "a filter
that attempts to read outside the packet or the scratch memory, or to
write outside the scratch memory, is terminated and the packet rejected".
Out-of-bounds packet loads therefore return verdict 0 instead of raising.

Cycle accounting charges :data:`~repro.perf.cost.BPF_DISPATCH_CYCLES` per
VM instruction (the fetch/decode/switch work of the OSF/1 C interpreter)
plus a small extra charge for checked packet loads, making the interpreted
baseline comparable with code running on the concrete Alpha model.

Execution uses the same threaded-code technique as
:mod:`repro.alpha.engine`: the program is decoded *once* at construction
into a flat table of per-instruction closures (offsets, widths, masked
immediates, and jump targets resolved at decode time).  The *modeled*
cycle charges are untouched — the VM still pays ``dispatch_cycles`` per
instruction and ``load_check_cycles`` per checked packet load; only the
Python-side fetch/decode/switch work disappears.  Decode errors the old
switch raised mid-run (bad LDX mode, bad ALU op, ...) compile to trap
closures that raise the identical :class:`BpfRuntimeError` at the same
execution point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines.bpf.isa import (
    BPF_A,
    BPF_ABS,
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_B,
    BPF_DIV,
    BPF_H,
    BPF_IMM,
    BPF_IND,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_LD,
    BPF_LDX,
    BPF_LEN,
    BPF_LSH,
    BPF_MEM,
    BPF_MEMWORDS,
    BPF_MISC,
    BPF_MSH,
    BPF_MUL,
    BPF_NEG,
    BPF_OR,
    BPF_RET,
    BPF_RSH,
    BPF_ST,
    BPF_STX,
    BPF_SUB,
    BPF_TAX,
    BPF_TXA,
    BPF_W,
    BpfInstruction,
)
from repro.errors import BpfRuntimeError
from repro.perf.cost import BPF_DISPATCH_CYCLES, BPF_LOAD_CHECK_CYCLES

_U32 = 0xFFFFFFFF

# Mutable VM state threaded through the handler closures.  A flat list is
# measurably cheaper than attribute access on an object in this loop.
_ACC = 0      # 32-bit accumulator A
_X = 1        # index register X
_LOADS = 2    # checked packet loads performed (for cycle accounting)
_VERDICT = 3  # result once a terminal handler fires
_PACKET = 4   # the packet bytes of the current run
_LEN = 5      # len(packet)
_SCRATCH = 6  # the 16 scratch cells M[0..15]

#: A decoded handler: mutates the state list, returns the next pc
#: (negative means the filter terminated and ``state[_VERDICT]`` is set).
Handler = Callable[[list], int]

_DONE = -1


@dataclass(frozen=True, slots=True)
class BpfRunStats:
    """Outcome of one filter invocation."""

    verdict: int
    instructions: int
    cycles: int


class BpfInterpreter:
    """A reusable interpreter for one verified program.

    Construction decodes the program into the handler table; :meth:`run`
    is the per-packet hot path and shares nothing mutable between runs.
    """

    def __init__(self, program: list[BpfInstruction],
                 dispatch_cycles: int = BPF_DISPATCH_CYCLES,
                 load_check_cycles: int = BPF_LOAD_CHECK_CYCLES,
                 max_steps: int = 100_000) -> None:
        self.program = list(program)
        self.dispatch_cycles = dispatch_cycles
        self.load_check_cycles = load_check_cycles
        self.max_steps = max_steps
        self._ops = _decode(self.program)

    def run(self, packet: bytes) -> BpfRunStats:
        """Filter one packet; returns the verdict and the cost counters."""
        state = [0, 0, 0, 0, packet, len(packet), [0] * BPF_MEMWORDS]
        ops = self._ops
        pc = 0
        for steps in range(self.max_steps):
            pc = ops[pc](state)
            if pc < 0:
                steps += 1
                return BpfRunStats(
                    state[_VERDICT], steps,
                    steps * self.dispatch_cycles
                    + state[_LOADS] * self.load_check_cycles)
        raise BpfRuntimeError("BPF filter ran too long")


# ---------------------------------------------------------------------------
# Decode: one specialized closure per instruction.

def _decode(program: list[BpfInstruction]) -> list[Handler]:
    size = len(program)
    ops: list[Handler] = [None] * size  # type: ignore[list-item]
    extra: list[Handler] = []
    traps: dict[int, int] = {}

    def resolve(target: int) -> int:
        """A jump target, or a trap slot raising the reference error."""
        if 0 <= target < size:
            return target
        slot = traps.get(target)
        if slot is None:
            slot = size + len(extra)
            extra.append(_pc_trap(target))
            traps[target] = slot
        return slot

    if size == 0:
        return [_pc_trap(0)]

    for pc, instruction in enumerate(program):
        ops[pc] = _decode_one(instruction, pc, resolve)
    return ops + extra


def _pc_trap(target: int) -> Handler:
    def op(state: list) -> int:
        raise BpfRuntimeError(f"BPF pc {target} out of range")
    return op


def _decode_one(instruction: BpfInstruction, pc: int,
                resolve: Callable[[int], int]) -> Handler:
    code = instruction.code
    k = instruction.k
    klass = code & 0x07
    nxt = resolve(pc + 1)

    if klass == BPF_RET:
        if code & BPF_A:
            def op(state):
                state[_VERDICT] = state[_ACC] & _U32
                return _DONE
        else:
            verdict = k & _U32

            def op(state):
                state[_VERDICT] = verdict
                return _DONE
        return op

    if klass == BPF_LD:
        mode = code & 0xE0
        width = {BPF_W: 4, BPF_H: 2, BPF_B: 1}[code & 0x18]
        if mode == BPF_IMM:
            value = k & _U32

            def op(state):
                state[_ACC] = value
                return nxt
        elif mode == BPF_LEN:
            def op(state):
                state[_ACC] = state[_LEN]
                return nxt
        elif mode == BPF_MEM:
            def op(state):
                state[_ACC] = state[_SCRATCH][k]
                return nxt
        elif mode == BPF_IND:
            op = _packet_load_ind(k, width, nxt)
        else:   # BPF_ABS (only IND is X-relative, as in the switch)
            op = _packet_load_abs(k, width, nxt)
        return op

    if klass == BPF_LDX:
        mode = code & 0xE0
        if mode == BPF_IMM:
            value = k & _U32

            def op(state):
                state[_X] = value
                return nxt
        elif mode == BPF_LEN:
            def op(state):
                state[_X] = state[_LEN]
                return nxt
        elif mode == BPF_MEM:
            def op(state):
                state[_X] = state[_SCRATCH][k]
                return nxt
        elif mode == BPF_MSH:
            def op(state):
                state[_LOADS] += 1
                if k < 0 or k >= state[_LEN]:
                    state[_VERDICT] = 0
                    return _DONE
                state[_X] = 4 * (state[_PACKET][k] & 0x0F)
                return nxt
        else:
            op = _runtime_trap(f"bad LDX mode {mode:#x}")
        return op

    if klass == BPF_ST:
        def op(state):
            state[_SCRATCH][k] = state[_ACC]
            return nxt
        return op

    if klass == BPF_STX:
        def op(state):
            state[_SCRATCH][k] = state[_X]
            return nxt
        return op

    if klass == BPF_ALU:
        return _decode_alu(code, k, nxt)

    if klass == BPF_JMP:
        op_bits = code & 0xF0
        if op_bits == BPF_JA:
            target = resolve(pc + 1 + k)

            def op(state):
                return target
            return op
        taken = resolve(pc + 1 + instruction.jt)
        fallthrough = resolve(pc + 1 + instruction.jf)
        if code & 0x08:     # operand is X
            if op_bits == BPF_JEQ:
                def op(state):
                    return taken if state[_ACC] == state[_X] else fallthrough
            elif op_bits == BPF_JGT:
                def op(state):
                    return taken if state[_ACC] > state[_X] else fallthrough
            elif op_bits == BPF_JGE:
                def op(state):
                    return taken if state[_ACC] >= state[_X] else fallthrough
            elif op_bits == BPF_JSET:
                def op(state):
                    return taken if state[_ACC] & state[_X] else fallthrough
            else:
                op = _runtime_trap(f"bad jump op {op_bits:#x}")
        else:
            if op_bits == BPF_JEQ:
                def op(state):
                    return taken if state[_ACC] == k else fallthrough
            elif op_bits == BPF_JGT:
                def op(state):
                    return taken if state[_ACC] > k else fallthrough
            elif op_bits == BPF_JGE:
                def op(state):
                    return taken if state[_ACC] >= k else fallthrough
            elif op_bits == BPF_JSET:
                def op(state):
                    return taken if state[_ACC] & k else fallthrough
            else:
                op = _runtime_trap(f"bad jump op {op_bits:#x}")
        return op

    if klass == BPF_MISC:
        if code & 0xF8 == BPF_TXA:
            def op(state):
                state[_ACC] = state[_X]
                return nxt
        elif code & 0xF8 == BPF_TAX:
            def op(state):
                state[_X] = state[_ACC]
                return nxt
        else:
            op = _runtime_trap(f"bad MISC op {code:#x}")
        return op

    return _runtime_trap(f"bad class {klass}")  # pragma: no cover


def _runtime_trap(message: str) -> Handler:
    def op(state: list) -> int:
        raise BpfRuntimeError(message)
    return op


def _packet_load_abs(k: int, width: int, nxt: int) -> Handler:
    """Checked absolute packet load in network byte order."""
    end = k + width
    if width == 1:
        def op(state):
            state[_LOADS] += 1
            if k < 0 or end > state[_LEN]:
                state[_VERDICT] = 0
                return _DONE
            state[_ACC] = state[_PACKET][k]
            return nxt
    elif width == 2:
        def op(state):
            state[_LOADS] += 1
            if k < 0 or end > state[_LEN]:
                state[_VERDICT] = 0
                return _DONE
            packet = state[_PACKET]
            state[_ACC] = (packet[k] << 8) | packet[k + 1]
            return nxt
    else:
        def op(state):
            state[_LOADS] += 1
            if k < 0 or end > state[_LEN]:
                state[_VERDICT] = 0
                return _DONE
            packet = state[_PACKET]
            state[_ACC] = ((packet[k] << 24) | (packet[k + 1] << 16)
                           | (packet[k + 2] << 8) | packet[k + 3])
            return nxt
    return op


def _packet_load_ind(k: int, width: int, nxt: int) -> Handler:
    """Checked X-relative packet load in network byte order."""
    def op(state):
        state[_LOADS] += 1
        offset = state[_X] + k
        if offset < 0 or offset + width > state[_LEN]:
            state[_VERDICT] = 0
            return _DONE
        packet = state[_PACKET]
        value = 0
        for position in range(width):   # network byte order
            value = (value << 8) | packet[offset + position]
        state[_ACC] = value
        return nxt
    return op


def _decode_alu(code: int, k: int, nxt: int) -> Handler:
    op_bits = code & 0xF0
    if code & 0x08:     # operand is X
        if op_bits == BPF_ADD:
            def op(state):
                state[_ACC] = (state[_ACC] + state[_X]) & _U32
                return nxt
        elif op_bits == BPF_SUB:
            def op(state):
                state[_ACC] = (state[_ACC] - state[_X]) & _U32
                return nxt
        elif op_bits == BPF_MUL:
            def op(state):
                state[_ACC] = (state[_ACC] * state[_X]) & _U32
                return nxt
        elif op_bits == BPF_DIV:
            def op(state):
                x = state[_X]
                if x == 0:
                    state[_VERDICT] = 0
                    return _DONE
                state[_ACC] = (state[_ACC] // x) & _U32
                return nxt
        elif op_bits == BPF_OR:
            def op(state):
                state[_ACC] = (state[_ACC] | state[_X]) & _U32
                return nxt
        elif op_bits == BPF_AND:
            def op(state):
                state[_ACC] = state[_ACC] & state[_X] & _U32
                return nxt
        elif op_bits == BPF_LSH:
            def op(state):
                state[_ACC] = (state[_ACC] << (state[_X] & 31)) & _U32
                return nxt
        elif op_bits == BPF_RSH:
            def op(state):
                state[_ACC] = (state[_ACC] & _U32) >> (state[_X] & 31)
                return nxt
        elif op_bits == BPF_NEG:
            def op(state):
                state[_ACC] = (-state[_ACC]) & _U32
                return nxt
        else:
            op = _runtime_trap(f"bad ALU op {op_bits:#x}")
        return op

    if op_bits == BPF_ADD:
        def op(state):
            state[_ACC] = (state[_ACC] + k) & _U32
            return nxt
    elif op_bits == BPF_SUB:
        def op(state):
            state[_ACC] = (state[_ACC] - k) & _U32
            return nxt
    elif op_bits == BPF_MUL:
        def op(state):
            state[_ACC] = (state[_ACC] * k) & _U32
            return nxt
    elif op_bits == BPF_DIV:
        if k == 0:
            def op(state):
                state[_VERDICT] = 0
                return _DONE
        else:
            def op(state):
                state[_ACC] = (state[_ACC] // k) & _U32
                return nxt
    elif op_bits == BPF_OR:
        def op(state):
            state[_ACC] = (state[_ACC] | k) & _U32
            return nxt
    elif op_bits == BPF_AND:
        mask = k & _U32

        def op(state):
            state[_ACC] &= mask
            return nxt
    elif op_bits == BPF_LSH:
        shift = k & 31

        def op(state):
            state[_ACC] = (state[_ACC] << shift) & _U32
            return nxt
    elif op_bits == BPF_RSH:
        shift = k & 31

        def op(state):
            state[_ACC] = (state[_ACC] & _U32) >> shift
            return nxt
    elif op_bits == BPF_NEG:
        def op(state):
            state[_ACC] = (-state[_ACC]) & _U32
            return nxt
    else:
        op = _runtime_trap(f"bad ALU op {op_bits:#x}")
    return op
