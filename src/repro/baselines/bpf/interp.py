"""The BPF interpreter with run-time safety checks.

Follows the BSD semantics the paper adopts for every baseline: "a filter
that attempts to read outside the packet or the scratch memory, or to
write outside the scratch memory, is terminated and the packet rejected".
Out-of-bounds packet loads therefore return verdict 0 instead of raising.

Cycle accounting charges :data:`~repro.perf.cost.BPF_DISPATCH_CYCLES` per
VM instruction (the fetch/decode/switch work of the OSF/1 C interpreter)
plus a small extra charge for checked packet loads, making the interpreted
baseline comparable with code running on the concrete Alpha model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.bpf.isa import (
    BPF_A,
    BPF_ABS,
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_B,
    BPF_DIV,
    BPF_H,
    BPF_IMM,
    BPF_IND,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_LEN,
    BPF_LSH,
    BPF_MEM,
    BPF_MEMWORDS,
    BPF_MISC,
    BPF_MSH,
    BPF_MUL,
    BPF_NEG,
    BPF_OR,
    BPF_RET,
    BPF_RSH,
    BPF_ST,
    BPF_STX,
    BPF_SUB,
    BPF_TAX,
    BPF_TXA,
    BPF_W,
    BpfInstruction,
)
from repro.errors import BpfRuntimeError
from repro.perf.cost import BPF_DISPATCH_CYCLES, BPF_LOAD_CHECK_CYCLES

_U32 = 0xFFFFFFFF


@dataclass(frozen=True, slots=True)
class BpfRunStats:
    """Outcome of one filter invocation."""

    verdict: int
    instructions: int
    cycles: int


class BpfInterpreter:
    """A reusable interpreter for one verified program."""

    def __init__(self, program: list[BpfInstruction],
                 dispatch_cycles: int = BPF_DISPATCH_CYCLES,
                 load_check_cycles: int = BPF_LOAD_CHECK_CYCLES,
                 max_steps: int = 100_000) -> None:
        self.program = list(program)
        self.dispatch_cycles = dispatch_cycles
        self.load_check_cycles = load_check_cycles
        self.max_steps = max_steps

    def run(self, packet: bytes) -> BpfRunStats:
        """Filter one packet; returns the verdict and the cost counters."""
        program = self.program
        size = len(program)
        length = len(packet)
        acc = 0
        index = 0
        scratch = [0] * BPF_MEMWORDS
        pc = 0
        steps = 0
        cycles = 0

        def load(offset: int, width: int) -> int | None:
            nonlocal cycles
            cycles += self.load_check_cycles
            if offset < 0 or offset + width > length:
                return None
            value = 0
            for position in range(width):  # network byte order
                value = (value << 8) | packet[offset + position]
            return value

        while True:
            if steps >= self.max_steps:
                raise BpfRuntimeError("BPF filter ran too long")
            if not 0 <= pc < size:
                raise BpfRuntimeError(f"BPF pc {pc} out of range")
            instruction = program[pc]
            steps += 1
            cycles += self.dispatch_cycles
            code = instruction.code
            klass = code & 0x07

            if klass == BPF_RET:
                verdict = acc if code & BPF_A else instruction.k
                return BpfRunStats(verdict & _U32, steps, cycles)

            if klass == BPF_LD:
                mode = code & 0xE0
                width = {BPF_W: 4, BPF_H: 2, BPF_B: 1}[code & 0x18]
                if mode == BPF_IMM:
                    acc = instruction.k & _U32
                elif mode == BPF_LEN:
                    acc = length
                elif mode == BPF_MEM:
                    acc = scratch[instruction.k]
                else:
                    offset = instruction.k
                    if mode == BPF_IND:
                        offset += index
                    value = load(offset, width)
                    if value is None:
                        return BpfRunStats(0, steps, cycles)
                    acc = value
                pc += 1
            elif klass == BPF_LDX:
                mode = code & 0xE0
                if mode == BPF_IMM:
                    index = instruction.k & _U32
                elif mode == BPF_LEN:
                    index = length
                elif mode == BPF_MEM:
                    index = scratch[instruction.k]
                elif mode == BPF_MSH:
                    value = load(instruction.k, 1)
                    if value is None:
                        return BpfRunStats(0, steps, cycles)
                    index = 4 * (value & 0x0F)
                else:
                    raise BpfRuntimeError(f"bad LDX mode {mode:#x}")
                pc += 1
            elif klass == BPF_ST:
                scratch[instruction.k] = acc
                pc += 1
            elif klass == BPF_STX:
                scratch[instruction.k] = index
                pc += 1
            elif klass == BPF_ALU:
                op = code & 0xF0
                operand = index if code & 0x08 else instruction.k
                if op == BPF_ADD:
                    acc = (acc + operand) & _U32
                elif op == BPF_SUB:
                    acc = (acc - operand) & _U32
                elif op == BPF_MUL:
                    acc = (acc * operand) & _U32
                elif op == BPF_DIV:
                    if operand == 0:
                        return BpfRunStats(0, steps, cycles)
                    acc = (acc // operand) & _U32
                elif op == BPF_OR:
                    acc = (acc | operand) & _U32
                elif op == BPF_AND:
                    acc = acc & operand & _U32
                elif op == BPF_LSH:
                    acc = (acc << (operand & 31)) & _U32
                elif op == BPF_RSH:
                    acc = (acc & _U32) >> (operand & 31)
                elif op == BPF_NEG:
                    acc = (-acc) & _U32
                else:
                    raise BpfRuntimeError(f"bad ALU op {op:#x}")
                pc += 1
            elif klass == BPF_JMP:
                op = code & 0xF0
                if op == BPF_JA:
                    pc += 1 + instruction.k
                else:
                    operand = index if code & 0x08 else instruction.k
                    if op == BPF_JEQ:
                        taken = acc == operand
                    elif op == BPF_JGT:
                        taken = acc > operand
                    elif op == BPF_JGE:
                        taken = acc >= operand
                    elif op == BPF_JSET:
                        taken = bool(acc & operand)
                    else:
                        raise BpfRuntimeError(f"bad jump op {op:#x}")
                    pc += 1 + (instruction.jt if taken else instruction.jf)
            elif klass == BPF_MISC:
                if code & 0xF8 == BPF_TXA:
                    acc = index
                elif code & 0xF8 == BPF_TAX:
                    index = acc
                else:
                    raise BpfRuntimeError(f"bad MISC op {code:#x}")
                pc += 1
            else:  # pragma: no cover
                raise BpfRuntimeError(f"bad class {klass}")
