"""The four paper filters as classic BPF programs.

Written the way ``tcpdump``'s compiler would emit them (big-endian loads,
accept-all-bytes snaplen), using the canonical idioms: ``ldh [12]`` for the
ethertype, ``ld [26] ; and #0xffffff00`` for a /24 source-network match,
and ``ldx 4*([14]&0xf) ; ldh [x+16]`` for the TCP destination port behind
a variable-length IP header.

The accept verdict is 1 (our kernels only care about zero/non-zero; real
BPF returns a snapshot length).
"""

from __future__ import annotations

from repro.baselines.bpf.isa import (
    BpfInstruction,
    alu_and_k,
    jeq,
    ld_b_abs,
    ld_h_abs,
    ld_h_ind,
    ld_w_abs,
    ldx_msh,
    ret_k,
)

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806
PROTO_TCP = 6

#: 128.2.206/24 and 128.2.220/24 as big-endian /24 prefixes.
NETWORK_A_BE = 0x8002CE00
NETWORK_B_BE = 0x8002DC00
NETWORK_MASK = 0xFFFFFF00

TARGET_PORT = 25


def bpf_filter1() -> list[BpfInstruction]:
    """Accept all IP packets."""
    return [
        ld_h_abs(12),
        jeq(ETHERTYPE_IP, 0, 1),
        ret_k(1),
        ret_k(0),
    ]


def bpf_filter2() -> list[BpfInstruction]:
    """Accept IP packets from network A."""
    return [
        ld_h_abs(12),
        jeq(ETHERTYPE_IP, 0, 4),
        ld_w_abs(26),
        alu_and_k(NETWORK_MASK),
        jeq(NETWORK_A_BE, 0, 1),
        ret_k(1),
        ret_k(0),
    ]


def bpf_filter3() -> list[BpfInstruction]:
    """Accept IP or ARP packets exchanged between networks A and B.

    BPF has one accumulator, so each direction re-checks the fields it
    needs; a conditional jump preserves A, which the src==B re-tests
    exploit (the masked source is still in A after the src==A test
    fails).  Layout, with accept at pc 23 and reject at pc 24::

        0  ldh [12]
        1  jeq IP        -> 2 : 12
        2  ld [26]; 3 and; 4 jeq A -> 5 : 8     (IP source network)
        5  ld [30]; 6 and; 7 jeq B -> 23 : 24   (A -> B)
        8  jeq B         -> 9 : 24              (source still in A)
        9  ld [30]; 10 and; 11 jeq A -> 23 : 24 (B -> A)
        12 jeq ARP       -> 13 : 24             (ethertype still in A)
        13 ld [28]; 14 and; 15 jeq A -> 16 : 19 (ARP sender network)
        16 ld [38]; 17 and; 18 jeq B -> 23 : 24
        19 jeq B         -> 20 : 24
        20 ld [38]; 21 and; 22 jeq A -> 23 : 24
    """
    return [
        ld_h_abs(12),                              # 0
        jeq(ETHERTYPE_IP, 0, 10),                  # 1
        ld_w_abs(26), alu_and_k(NETWORK_MASK),     # 2 3
        jeq(NETWORK_A_BE, 0, 3),                   # 4
        ld_w_abs(30), alu_and_k(NETWORK_MASK),     # 5 6
        jeq(NETWORK_B_BE, 15, 16),                 # 7
        jeq(NETWORK_B_BE, 0, 15),                  # 8
        ld_w_abs(30), alu_and_k(NETWORK_MASK),     # 9 10
        jeq(NETWORK_A_BE, 11, 12),                 # 11
        jeq(ETHERTYPE_ARP, 0, 11),                 # 12
        ld_w_abs(28), alu_and_k(NETWORK_MASK),     # 13 14
        jeq(NETWORK_A_BE, 0, 3),                   # 15
        ld_w_abs(38), alu_and_k(NETWORK_MASK),     # 16 17
        jeq(NETWORK_B_BE, 4, 5),                   # 18
        jeq(NETWORK_B_BE, 0, 4),                   # 19
        ld_w_abs(38), alu_and_k(NETWORK_MASK),     # 20 21
        jeq(NETWORK_A_BE, 0, 1),                   # 22
        ret_k(1),                                  # 23: accept
        ret_k(0),                                  # 24: reject
    ]


def bpf_filter4() -> list[BpfInstruction]:
    """Accept TCP packets with destination port 25 (tcpdump idiom)."""
    return [
        ld_h_abs(12),
        jeq(ETHERTYPE_IP, 0, 6),
        ld_b_abs(23),
        jeq(PROTO_TCP, 0, 4),
        ldx_msh(14),          # X := IP header length
        ld_h_ind(16),         # A := destination port (14 + IHL*4 + 2)
        jeq(TARGET_PORT, 0, 1),
        ret_k(1),
        ret_k(0),
    ]


#: name -> program, aligned with repro.filters.programs.FILTERS.
BPF_FILTERS = {
    "filter1": bpf_filter1(),
    "filter2": bpf_filter2(),
    "filter3": bpf_filter3(),
    "filter4": bpf_filter4(),
}
