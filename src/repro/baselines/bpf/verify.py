"""The BPF static verifier — the kernel's attach-time check.

Mirrors the OSF/1 / BSD ``bpf_validate``: every instruction must have a
known opcode, every jump must land forward and inside the program, scratch
memory indices must be in range, constant divisors must be non-zero, and
the program must end in RET.  The paper measures this check at "a few
microseconds" and notes it is all the safety BPF gets *statically* — the
memory checks happen at run time, every time.
"""

from __future__ import annotations

from repro.baselines.bpf.isa import (
    BPF_ALU,
    BPF_DIV,
    BPF_IMM,
    BPF_IND,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_LEN,
    BPF_MEM,
    BPF_MEMWORDS,
    BPF_MISC,
    BPF_MSH,
    BPF_RET,
    BPF_ST,
    BPF_STX,
    BpfInstruction,
)
from repro.errors import BpfVerifyError

_VALID_LD_MODES = (0x00, 0x20, 0x40, 0x60, 0x80)  # IMM ABS IND MEM LEN
_VALID_ALU_OPS = (0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80)
_VALID_JMP_OPS = (BPF_JA, BPF_JEQ, BPF_JGT, BPF_JGE, BPF_JSET)


def verify_bpf(program: list[BpfInstruction]) -> None:
    """Attach-time validation; raises :class:`BpfVerifyError`."""
    size = len(program)
    if size == 0:
        raise BpfVerifyError("empty filter")
    for pc, instruction in enumerate(program):
        klass = instruction.klass()
        if klass in (BPF_LD, BPF_LDX):
            mode = instruction.code & 0xE0
            if klass == BPF_LDX and mode == BPF_MSH:
                pass  # the header-length idiom
            elif mode not in _VALID_LD_MODES:
                raise BpfVerifyError(
                    f"pc {pc}: bad load mode {mode:#x}")
            if mode == BPF_MEM and instruction.k >= BPF_MEMWORDS:
                raise BpfVerifyError(
                    f"pc {pc}: scratch index {instruction.k} out of range")
        elif klass in (BPF_ST, BPF_STX):
            if instruction.k >= BPF_MEMWORDS:
                raise BpfVerifyError(
                    f"pc {pc}: scratch index {instruction.k} out of range")
        elif klass == BPF_ALU:
            op = instruction.code & 0xF0
            if op not in _VALID_ALU_OPS:
                raise BpfVerifyError(f"pc {pc}: bad ALU op {op:#x}")
            if op == BPF_DIV and (instruction.code & 0x08) == BPF_K \
                    and instruction.k == 0:
                raise BpfVerifyError(f"pc {pc}: constant division by zero")
        elif klass == BPF_JMP:
            op = instruction.code & 0xF0
            if op not in _VALID_JMP_OPS:
                raise BpfVerifyError(f"pc {pc}: bad jump op {op:#x}")
            if op == BPF_JA:
                target = pc + 1 + instruction.k
                if not 0 <= target < size:
                    raise BpfVerifyError(f"pc {pc}: jump out of range")
            else:
                for displacement in (instruction.jt, instruction.jf):
                    target = pc + 1 + displacement
                    if not 0 <= target < size:
                        raise BpfVerifyError(
                            f"pc {pc}: branch target {target} out of range")
        elif klass == BPF_RET:
            pass
        elif klass == BPF_MISC:
            pass
        else:  # pragma: no cover - klass() is 3 bits, all covered
            raise BpfVerifyError(f"pc {pc}: unknown class {klass}")
    last = program[-1]
    if last.klass() != BPF_RET:
        raise BpfVerifyError("filter does not end in RET")
