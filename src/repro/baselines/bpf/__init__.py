"""The BSD Packet Filter (McCanne & Jacobson 1993) — interpreted baseline.

A faithful classic-BPF implementation: the accumulator/index-register VM,
the static verifier the kernel runs at attach time (valid opcodes, forward
branches in range — "a few microseconds", which we also measure), and the
checked interpreter in which any out-of-bounds packet access terminates
the filter and rejects the packet.

The four paper filters are provided as idiomatic BPF programs in
:mod:`repro.baselines.bpf.programs`, including the classic
``ldx 4*([14]&0xf)`` header-length idiom for Filter 4.
"""

from repro.baselines.bpf.isa import (
    BpfInstruction,
    ld_w_abs,
    ld_h_abs,
    ld_b_abs,
    ld_w_ind,
    ld_h_ind,
    ld_b_ind,
    ld_len,
    ld_imm,
    ldx_imm,
    ldx_msh,
    ldx_len,
    st,
    stx,
    alu_add_k,
    alu_and_k,
    alu_or_k,
    alu_rsh_k,
    alu_lsh_k,
    jmp_ja,
    jeq,
    jgt,
    jge,
    jset,
    ret_k,
    ret_a,
    tax,
    txa,
)
from repro.baselines.bpf.verify import verify_bpf
from repro.baselines.bpf.interp import BpfInterpreter, BpfRunStats
from repro.baselines.bpf.programs import BPF_FILTERS
from repro.baselines.bpf.compile import compile_bpf

__all__ = [
    "BpfInstruction",
    "verify_bpf",
    "BpfInterpreter",
    "BpfRunStats",
    "BPF_FILTERS",
    "compile_bpf",
    "ld_w_abs", "ld_h_abs", "ld_b_abs", "ld_w_ind", "ld_h_ind",
    "ld_b_ind", "ld_len", "ld_imm", "ldx_imm", "ldx_msh", "ldx_len",
    "st", "stx", "alu_add_k", "alu_and_k", "alu_or_k", "alu_rsh_k",
    "alu_lsh_k", "jmp_ja", "jeq", "jgt", "jge", "jset", "ret_k", "ret_a",
    "tax", "txa",
]
