"""Two toy Modula-3 compilers targeting the Alpha subset.

Both compilers are *naive by design*: they insert a bounds check at every
packet access and never eliminate one, reproducing the paper's observation
that the DEC SRC compiler "tries to eliminate some of these checks
statically but is not very successful for packet filters" (the minimum
packet length is not expressible in the type system).

* :func:`compile_plain` — ``PacketByte`` only; each byte access costs a
  compare, a conditional branch, the aligned word load, and an extract
  (Alpha 21064 has no byte loads, so even safe Modula-3 code pays the
  LDQ+EXTBL dance — with a check per *byte*).
* :func:`compile_view` — additionally accepts ``ViewWord``: one check per
  64-bit word access, the VIEW extension's ~20% win.

The compilers emit assembly text with symbolic labels and reuse the
project assembler, so their output is an ordinary :data:`Program` that
runs on the concrete machine and can be certified like any other binary.
A failed check branches to a tail that returns 0 (reject), modelling the
runtime exception.

Calling convention matches the filter policy: r1 packet, r2 length,
r3 scratch, result in r0.  Registers r4-r10 form the expression stack.
"""

from __future__ import annotations

import itertools

from repro.alpha.isa import Program
from repro.alpha.parser import parse_program
from repro.baselines.m3.lang import (
    Bin,
    Const,
    If,
    Len,
    M3Expr,
    PacketByte,
    ViewWord,
)
from repro.errors import M3Error

_FIRST_REG = 4
_LAST_REG = 10

_BIN_MNEMONICS = {
    "+": "ADDQ",
    "-": "SUBQ",
    "*": "MULQ",
    "&": "AND",
    "|": "BIS",
    "^": "XOR",
    "<<": "SLL",
    ">>": "SRL",
    "==": "CMPEQ",
    "<": "CMPULT",
    "<=": "CMPULE",
}


class _Emitter:
    def __init__(self, allow_view: bool) -> None:
        self.lines: list[str] = []
        self.labels = itertools.count()
        self.allow_view = allow_view

    def op(self, text: str) -> None:
        self.lines.append(f"        {text}")

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def fresh_label(self, stem: str) -> str:
        return f"{stem}{next(self.labels)}"

    def constant(self, value: int, reg: int) -> None:
        """Materialize an unsigned constant below 2^31."""
        if not 0 <= value < (1 << 31):
            raise M3Error(f"constant {value:#x} out of compiler range")
        low = value & 0xFFFF
        if low >= 0x8000:
            low -= 0x10000
        high = (value - low) >> 16
        self.op(f"SUBQ r{reg}, r{reg}, r{reg}")
        if high:
            self.op(f"LDAH r{reg}, {high}(r{reg})")
        if low or not high:
            self.op(f"LDA r{reg}, {low}(r{reg})")

    def expression(self, expr: M3Expr, reg: int) -> None:
        """Evaluate ``expr`` into r<reg>, using r<reg+1>.. as scratch."""
        if reg > _LAST_REG:
            raise M3Error("expression too deep for the register stack")

        if isinstance(expr, Const):
            self.constant(expr.value, reg)
            return
        if isinstance(expr, Len):
            self.op(f"ADDQ r2, 0, r{reg}")
            return
        if isinstance(expr, PacketByte):
            self.expression(expr.index, reg)
            scratch = reg + 1
            if scratch > _LAST_REG:
                raise M3Error("expression too deep for the register stack")
            self.op(f"CMPULT r{reg}, r2, r{scratch}")
            self.op(f"BEQ r{scratch}, fail")
            self.op(f"SRL r{reg}, 3, r{scratch}")
            self.op(f"SLL r{scratch}, 3, r{scratch}")
            self.op(f"ADDQ r1, r{scratch}, r{scratch}")
            self.op(f"LDQ r{scratch}, 0(r{scratch})")
            self.op(f"EXTBL r{scratch}, r{reg}, r{reg}")
            return
        if isinstance(expr, ViewWord):
            if not self.allow_view:
                raise M3Error(
                    "ViewWord requires the VIEW extension (compile_view)")
            self.expression(expr.word_index, reg)
            scratch = reg + 1
            if scratch > _LAST_REG:
                raise M3Error("expression too deep for the register stack")
            self.op(f"SRL r2, 3, r{scratch}")
            self.op(f"CMPULT r{reg}, r{scratch}, r{scratch}")
            self.op(f"BEQ r{scratch}, fail")
            self.op(f"SLL r{reg}, 3, r{scratch}")
            self.op(f"ADDQ r1, r{scratch}, r{scratch}")
            self.op(f"LDQ r{reg}, 0(r{scratch})")
            return
        if isinstance(expr, Bin):
            mnemonic = _BIN_MNEMONICS[expr.op]
            self.expression(expr.left, reg)
            right = expr.right
            if isinstance(right, Const) and 0 <= right.value <= 255:
                self.op(f"{mnemonic} r{reg}, {right.value}, r{reg}")
                return
            self.expression(right, reg + 1)
            self.op(f"{mnemonic} r{reg}, r{reg + 1}, r{reg}")
            return
        if isinstance(expr, If):
            orelse_label = self.fresh_label("else")
            end_label = self.fresh_label("end")
            self.expression(expr.cond, reg)
            self.op(f"BEQ r{reg}, {orelse_label}")
            self.expression(expr.then, reg)
            self.op(f"BR {end_label}")
            self.label(orelse_label)
            self.expression(expr.orelse, reg)
            self.label(end_label)
            return
        raise M3Error(f"not an expression: {expr!r}")


def _compile(expr: M3Expr, allow_view: bool) -> Program:
    emitter = _Emitter(allow_view)
    emitter.expression(expr, _FIRST_REG)
    emitter.op(f"ADDQ r{_FIRST_REG}, 0, r0")
    emitter.op("RET")
    emitter.label("fail")
    emitter.op("SUBQ r0, r0, r0")
    emitter.op("RET")
    return parse_program("\n".join(emitter.lines))


def compile_plain(expr: M3Expr) -> Program:
    """The plain Modula-3 model: byte accesses only, a check per byte."""
    return _compile(expr, allow_view=False)


def compile_view(expr: M3Expr) -> Program:
    """The VIEW model: word accesses allowed, a check per word."""
    return _compile(expr, allow_view=True)
