"""The safe filter language: expressions over a checked packet buffer.

A filter is one expression; its non-zero/zero value is the verdict.  The
language is deliberately tiny but faithful to what the paper's Modula-3
filters can say:

* ``PacketByte(index)`` — the byte at ``index``; *every* evaluation is
  bounds-checked (``index < len``), because the type system cannot prove
  it away.  Out of bounds raises, which the runtime turns into "reject".
* ``ViewWord(word_index)`` — VIEW only: the 64-bit little-endian word at
  ``word_index`` of the packet viewed as an aligned word array; checked
  against ``len DIV 8``.
* ``Bin`` — unsigned 64-bit arithmetic, comparisons yielding 0/1.
* ``If(cond, then, orelse)`` — conditional expression.

:func:`evaluate` is the language's reference semantics (the "Modula-3
interpreter"), used to cross-check the compilers instruction by
instruction against the oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import M3Error, M3RuntimeError

_MASK = (1 << 64) - 1

#: op -> semantics for Bin.
BIN_OPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", "==", "<", "<=")


@dataclass(frozen=True, slots=True)
class Const:
    value: int


@dataclass(frozen=True, slots=True)
class Len:
    """The packet length in bytes (a CARDINAL the kernel passes in)."""


@dataclass(frozen=True, slots=True)
class PacketByte:
    index: "M3Expr"


@dataclass(frozen=True, slots=True)
class ViewWord:
    """VIEW(packet, ARRAY OF Word64)[word_index]."""

    word_index: "M3Expr"


@dataclass(frozen=True, slots=True)
class Bin:
    op: str
    left: "M3Expr"
    right: "M3Expr"

    def __post_init__(self) -> None:
        if self.op not in BIN_OPS:
            raise M3Error(f"unknown operator {self.op!r}")


@dataclass(frozen=True, slots=True)
class If:
    cond: "M3Expr"
    then: "M3Expr"
    orelse: "M3Expr"


M3Expr = Union[Const, Len, PacketByte, ViewWord, Bin, If]


def byte(index: int | M3Expr) -> PacketByte:
    """Sugar: a (checked) packet byte at a constant or computed index."""
    if isinstance(index, int):
        index = Const(index)
    return PacketByte(index)


def be16(offset: int | M3Expr) -> Bin:
    """Big-endian 16-bit field, the way an M3 programmer reads headers."""
    if isinstance(offset, int):
        lo: M3Expr = Const(offset)
    else:
        lo = offset
    hi_plus = Bin("+", lo, Const(1))
    return Bin("|", Bin("<<", PacketByte(lo), Const(8)),
               PacketByte(hi_plus))


def be24(offset: int) -> Bin:
    """Big-endian 24-bit field at a constant offset (network prefixes)."""
    return Bin("|", Bin("<<", PacketByte(Const(offset)), Const(16)),
               Bin("|", Bin("<<", PacketByte(Const(offset + 1)), Const(8)),
                   PacketByte(Const(offset + 2))))


def evaluate(expr: M3Expr, packet: bytes) -> int:
    """Reference semantics; raises :class:`M3RuntimeError` on a failed
    bounds check (the runtime rejects such packets)."""
    if isinstance(expr, Const):
        return expr.value & _MASK
    if isinstance(expr, Len):
        return len(packet)
    if isinstance(expr, PacketByte):
        index = evaluate(expr.index, packet)
        if index >= len(packet):
            raise M3RuntimeError(f"byte index {index} out of bounds")
        return packet[index]
    if isinstance(expr, ViewWord):
        index = evaluate(expr.word_index, packet)
        if index >= len(packet) // 8:
            raise M3RuntimeError(f"word index {index} out of bounds")
        chunk = packet[index * 8:index * 8 + 8]
        return int.from_bytes(chunk, "little")
    if isinstance(expr, Bin):
        left = evaluate(expr.left, packet)
        right = evaluate(expr.right, packet)
        if expr.op == "+":
            return (left + right) & _MASK
        if expr.op == "-":
            return (left - right) & _MASK
        if expr.op == "*":
            return (left * right) & _MASK
        if expr.op == "&":
            return left & right
        if expr.op == "|":
            return left | right
        if expr.op == "^":
            return left ^ right
        if expr.op == "<<":
            return (left << (right & 63)) & _MASK
        if expr.op == ">>":
            return left >> (right & 63)
        if expr.op == "==":
            return 1 if left == right else 0
        if expr.op == "<":
            return 1 if left < right else 0
        if expr.op == "<=":
            return 1 if left <= right else 0
    if isinstance(expr, If):
        if evaluate(expr.cond, packet):
            return evaluate(expr.then, packet)
        return evaluate(expr.orelse, packet)
    raise M3Error(f"not an expression: {expr!r}")


def run_filter(expr: M3Expr, packet: bytes) -> int:
    """The runtime's contract: a failed check rejects the packet."""
    try:
        return evaluate(expr, packet)
    except M3RuntimeError:
        return 0
