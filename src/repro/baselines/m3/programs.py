"""The four filters written in the safe language, plain and VIEW variants.

The plain versions read header fields the way a Modula-3 programmer would:
byte by byte, big-endian, every byte access implicitly checked.  The VIEW
versions cast the packet to an aligned 64-bit word array and extract
fields with shifts and masks — fewer (but still checked) memory
operations, the paper's measured ~20% improvement.

Both must agree with the oracles packet-for-packet on well-formed traffic;
the boundary behaviour (a failed check rejects) coincides with BPF's
semantics by construction.
"""

from __future__ import annotations

from repro.baselines.m3.lang import (
    Bin,
    Const,
    If,
    Len,
    M3Expr,
    PacketByte,
    ViewWord,
    be16,
    be24,
)

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806
PROTO_TCP = 6
NETWORK_A_BE = 0x8002CE   # 128.2.206 as a big-endian 24-bit prefix
NETWORK_B_BE = 0x8002DC
TARGET_PORT = 25


def _eq(a: M3Expr, b: int) -> Bin:
    return Bin("==", a, Const(b))


def _and(a: M3Expr, b: M3Expr) -> Bin:
    return Bin("&", a, b)


def _or(a: M3Expr, b: M3Expr) -> Bin:
    return Bin("|", a, b)


# -- plain (byte-at-a-time) versions -----------------------------------------

def m3_filter1() -> M3Expr:
    return _eq(be16(12), ETHERTYPE_IP)


def m3_filter2() -> M3Expr:
    return If(_eq(be16(12), ETHERTYPE_IP),
              _eq(be24(26), NETWORK_A_BE),
              Const(0))


def m3_filter3() -> M3Expr:
    ip_case = _or(_and(_eq(be24(26), NETWORK_A_BE),
                       _eq(be24(30), NETWORK_B_BE)),
                  _and(_eq(be24(26), NETWORK_B_BE),
                       _eq(be24(30), NETWORK_A_BE)))
    arp_case = _or(_and(_eq(be24(28), NETWORK_A_BE),
                        _eq(be24(38), NETWORK_B_BE)),
                   _and(_eq(be24(28), NETWORK_B_BE),
                        _eq(be24(38), NETWORK_A_BE)))
    return If(_eq(be16(12), ETHERTYPE_IP), ip_case,
              If(_eq(be16(12), ETHERTYPE_ARP), arp_case, Const(0)))


def m3_filter4() -> M3Expr:
    header_length = Bin("*", Bin("&", PacketByte(Const(14)), Const(15)),
                        Const(4))
    port_offset = Bin("+", header_length, Const(16))  # 14 + ihl*4 + 2
    port = be16(port_offset)
    return If(_eq(be16(12), ETHERTYPE_IP),
              If(_eq(PacketByte(Const(23)), PROTO_TCP),
                 _eq(port, TARGET_PORT),
                 Const(0)),
              Const(0))


# -- VIEW (word-at-a-time) versions -------------------------------------------

def _view_field(word_index: M3Expr | int, byte_in_word: M3Expr | int,
                width_mask: int) -> M3Expr:
    """Little-endian field extraction from a VIEW word: the M3 idiom
    ``Word.And(Word.RightShift(view[w], 8*b), mask)``."""
    if isinstance(word_index, int):
        word_index = Const(word_index)
    if isinstance(byte_in_word, int):
        shift: M3Expr = Const(8 * byte_in_word)
    else:
        shift = Bin("*", byte_in_word, Const(8))
    return Bin("&", Bin(">>", ViewWord(word_index), shift),
               Const(width_mask))


#: Little-endian constants for VIEW comparisons (byte-swapped).
ETHERTYPE_IP_LE = 0x0008
ETHERTYPE_ARP_LE = 0x0608
NETWORK_A_LE = 0xCE0280
NETWORK_B_LE = 0xDC0280
TARGET_PORT_LE = 0x1900


def m3v_filter1() -> M3Expr:
    return _eq(_view_field(1, 4, 0xFFFF), ETHERTYPE_IP_LE)


def m3v_filter2() -> M3Expr:
    return If(_eq(_view_field(1, 4, 0xFFFF), ETHERTYPE_IP_LE),
              _eq(_view_field(3, 2, 0xFFFFFF), NETWORK_A_LE),
              Const(0))


def m3v_filter3() -> M3Expr:
    ip_src = _view_field(3, 2, 0xFFFFFF)       # bytes 26-28
    ip_dst = _or(_view_field(3, 6, 0xFFFF),    # bytes 30-31
                 Bin("<<", _view_field(4, 0, 0xFF), Const(16)))  # byte 32
    arp_src = _view_field(3, 4, 0xFFFFFF)      # bytes 28-30
    arp_dst = _or(_view_field(4, 6, 0xFFFF),   # bytes 38-39
                  Bin("<<", _view_field(5, 0, 0xFF), Const(16)))  # byte 40
    ip_case = _or(_and(_eq(ip_src, NETWORK_A_LE), _eq(ip_dst, NETWORK_B_LE)),
                  _and(_eq(ip_src, NETWORK_B_LE), _eq(ip_dst, NETWORK_A_LE)))
    arp_case = _or(_and(_eq(arp_src, NETWORK_A_LE),
                        _eq(arp_dst, NETWORK_B_LE)),
                   _and(_eq(arp_src, NETWORK_B_LE),
                        _eq(arp_dst, NETWORK_A_LE)))
    ethertype = _view_field(1, 4, 0xFFFF)
    return If(_eq(ethertype, ETHERTYPE_IP_LE), ip_case,
              If(_eq(ethertype, ETHERTYPE_ARP_LE), arp_case, Const(0)))


def m3v_filter4() -> M3Expr:
    ethertype = _view_field(1, 4, 0xFFFF)
    protocol = _view_field(2, 7, 0xFF)          # byte 23
    header_length = Bin("*", _view_field(1, 6, 0x0F), Const(4))
    port_offset = Bin("+", header_length, Const(16))
    port_word = ViewWord(Bin(">>", port_offset, Const(3)))
    port = Bin("&", Bin(">>", port_word,
                        Bin("*", Bin("&", port_offset, Const(7)),
                            Const(8))),
               Const(0xFFFF))
    return If(_eq(ethertype, ETHERTYPE_IP_LE),
              If(_eq(protocol, PROTO_TCP),
                 _eq(port, TARGET_PORT_LE),
                 Const(0)),
              Const(0))


M3_FILTERS: dict[str, M3Expr] = {
    "filter1": m3_filter1(),
    "filter2": m3_filter2(),
    "filter3": m3_filter3(),
    "filter4": m3_filter4(),
}

M3_VIEW_FILTERS: dict[str, M3Expr] = {
    "filter1": m3v_filter1(),
    "filter2": m3v_filter2(),
    "filter3": m3v_filter3(),
    "filter4": m3v_filter4(),
}
