"""The safe-language baseline: a Modula-3-like filter language (paper §3.1).

SPIN accepts kernel extensions written in the safe subset of Modula-3,
compiled by a trusted compiler that inserts bounds checks the type system
cannot eliminate — crucially, "the fact that packets are at least 64 bytes
long cannot be communicated to the compiler through the Modula-3 type
system", so *every* packet access pays a check.

We model this with a small expression language over packet bytes
(:mod:`repro.baselines.m3.lang`) and two toy compilers to Alpha code
(:mod:`repro.baselines.m3.compile`):

* **plain** — packet fields are loaded a byte at a time, one bounds check
  per byte (the DEC SRC Modula-3 model);
* **VIEW** — the packet is safely cast to an array of aligned 64-bit
  words, one bounds check per word access (the VIEW extension; the paper
  measured it ~20% faster).

A failed check terminates the filter and rejects the packet, mirroring
the language's runtime exception.  The compiled output is ordinary Alpha
code, so it runs on the same concrete machine and — because the inserted
checks make it safe — can even be certified as PCC (the §4 "certifying
compiler" direction).
"""

from repro.baselines.m3.lang import (
    M3Expr,
    Const,
    Len,
    PacketByte,
    ViewWord,
    Bin,
    If,
    evaluate,
)
from repro.baselines.m3.compile import compile_plain, compile_view
from repro.baselines.m3.programs import M3_FILTERS, M3_VIEW_FILTERS

__all__ = [
    "M3Expr",
    "Const",
    "Len",
    "PacketByte",
    "ViewWord",
    "Bin",
    "If",
    "evaluate",
    "compile_plain",
    "compile_view",
    "M3_FILTERS",
    "M3_VIEW_FILTERS",
]
