"""The three safe-execution baselines the paper compares PCC against:

* :mod:`repro.baselines.bpf` — the BSD Packet Filter: a run-time-checked
  interpreter for a restricted accumulator VM;
* :mod:`repro.baselines.sfi` — Software Fault Isolation: a binary
  rewriter that sandboxes every memory operation into a 2048-byte
  segment;
* :mod:`repro.baselines.m3` — the safe-language approach (SPIN's
  Modula-3): a small type-safe language compiled with per-access bounds
  checks, with and without the VIEW word-cast extension.
"""
