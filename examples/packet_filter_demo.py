#!/usr/bin/env python3
"""The paper's main experiment in miniature: safe network packet filters.

Certifies the four hand-tuned Alpha filters against the §3 packet-filter
policy, installs them in a simulated kernel, and runs them over a synthetic
Ethernet trace next to the three baselines (BPF interpreter, SFI-rewritten
code, safe-language code), reporting per-packet cost the way Figure 8 does.

Run:  python examples/packet_filter_demo.py [packets]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.filters import FILTERS, TraceConfig, generate_trace
from repro.filters.policy import packet_filter_policy
from repro.pcc import CodeConsumer, CodeProducer
from repro.perf import ALPHA_175, run_figure8


def main() -> None:
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    policy = packet_filter_policy()
    producer = CodeProducer(policy)
    consumer = CodeConsumer(policy)

    print(f"Certifying the four filters against policy "
          f"{policy.name!r}...")
    for spec in FILTERS:
        certified = producer.certify(spec.source)
        extension = consumer.install(certified.binary.to_bytes())
        print(f"  {spec.name}: {len(certified.program):3} instructions, "
              f"{certified.binary.size:5} byte binary, validated in "
              f"{extension.report.validation_seconds * 1000:5.1f} ms  "
              f"— {spec.description}")

    print(f"\nFiltering a {packets}-packet synthetic trace with every "
          f"approach (verdicts oracle-checked)...")
    trace = generate_trace(TraceConfig(packets=packets))
    benchmarks = run_figure8(trace)

    print(f"\n{'filter':10} {'approach':9} {'cycles/pkt':>11} "
          f"{'us @175MHz':>11} {'vs PCC':>7} {'accepted':>9}")
    for bench in benchmarks:
        pcc_cycles = bench.results["pcc"].cycles_per_packet
        for approach in ("bpf", "bpf-jit", "m3", "m3-view", "sfi", "pcc"):
            result = bench.results[approach]
            ratio = result.cycles_per_packet / pcc_cycles
            print(f"{result.filter_name:10} {approach:9} "
                  f"{result.cycles_per_packet:11.1f} "
                  f"{result.us_per_packet(ALPHA_175):11.3f} "
                  f"{ratio:6.2f}x {result.accepted:9}")
        print()

    print("The paper's Figure 8 shape: PCC fastest everywhere, SFI "
          "close behind,\nsafe-language code slower, the BPF interpreter "
          "roughly an order of\nmagnitude behind — with identical verdicts "
          "across all five pipelines.")


if __name__ == "__main__":
    main()
