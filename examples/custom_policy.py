#!/usr/bin/env python3
"""Defining your own safety policy (paper §2.1).

"It is the job of the designer of the code consumer to define the safety
policy ... several different safety policies might be used, each one
tailored to the needs of specific tasks or services."

This example builds a policy the repository does not ship: a *message
buffer* service.  The kernel hands the extension two buffers — a read-only
input message (r1, length r2) and a writable 64-byte output area (r3) —
and requires that the extension never writes the input, a data-abstraction
guarantee beyond plain memory protection.  We then certify a small
"copy and frame" extension against it and watch an unsafe variant fail.

Run:  python examples/custom_policy.py
"""

import struct
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.alpha.machine import Memory
from repro.errors import CertificationError
from repro.logic.formulas import Forall, Implies, conj, eq, ge, lt, rd, wr
from repro.logic.terms import Var, add64, and64
from repro.pcc import CodeConsumer, CodeProducer, certify
from repro.vcgen.policy import SafetyPolicy, word_identity

OUT_SIZE = 64


def message_buffer_policy() -> SafetyPolicy:
    """r1 = message (readable, r2 bytes, >= 32); r3 = output (writable,
    64 bytes).  The output area is also readable (read-modify-write)."""
    r1, r2, r3 = Var("r1"), Var("r2"), Var("r3")
    i, j = Var("i"), Var("j")

    readable_msg = Forall("i", Implies(
        conj([ge(i, 0), lt(i, r2), eq(and64(i, 7), 0)]),
        rd(add64(r1, i))))
    out_guard = conj([ge(j, 0), lt(j, OUT_SIZE), eq(and64(j, 7), 0)])
    readable_out = Forall("j", Implies(out_guard, rd(add64(r3, j))))
    writable_out = Forall("j", Implies(out_guard, wr(add64(r3, j))))

    def make_checkers(registers, read_word):
        message, length, out = registers[1], registers[2], registers[3]

        def can_read(address):
            return (message <= address < message + length
                    or out <= address < out + OUT_SIZE)

        def can_write(address):
            return out <= address < out + OUT_SIZE

        return can_read, can_write

    return SafetyPolicy(
        name="message-buffer",
        precondition=conj([
            word_identity(r1), word_identity(r2), word_identity(r3),
            lt(r2, 1 << 63), ge(r2, 32),
            readable_msg, readable_out, writable_out,
        ]),
        make_checkers=make_checkers,
    )


# Copies the first three words of the message into the output area,
# framed by a magic header word.
SAFE_EXTENSION = """
    SUBQ r4, r4, r4
    LDA  r4, 0x7EAD(r4)   % header magic
    STQ  r4, 0(r3)
    LDQ  r5, 0(r1)
    STQ  r5, 8(r3)
    LDQ  r5, 8(r1)
    STQ  r5, 16(r3)
    LDQ  r5, 16(r1)
    STQ  r5, 24(r3)
    RET
"""

# Identical, except it also "fixes up" the message in place — which the
# policy forbids: the input is an abstraction the extension must not touch.
UNSAFE_EXTENSION = """
    LDQ  r5, 0(r1)
    ADDQ r5, 1, r5
    STQ  r5, 0(r1)
    RET
"""


def main() -> None:
    policy = message_buffer_policy()
    print(f"Published policy {policy.name!r}.\n")

    producer = CodeProducer(policy)
    consumer = CodeConsumer(policy)

    certified = producer.certify(SAFE_EXTENSION)
    extension = consumer.install(certified.binary.to_bytes())
    print(f"Safe extension: certified + validated "
          f"({len(certified.program)} instructions, "
          f"{certified.binary.size}-byte binary).")

    message = struct.pack("<QQQQ", 111, 222, 333, 444)
    memory = Memory()
    memory.map_region(0x1000, message, writable=False, name="message")
    memory.map_region(0x2000, bytes(OUT_SIZE), writable=True, name="out")
    extension.run(memory, registers={1: 0x1000, 2: len(message),
                                     3: 0x2000})
    out_words = struct.unpack("<8Q", bytes(memory.region("out")))
    print(f"Output area after run: {out_words[:4]} "
          f"(header + three copied words)\n")

    try:
        certify(UNSAFE_EXTENSION, policy)
        print("unsafe extension certified?!  (should never happen)")
    except CertificationError as error:
        message = str(error)
        print("Unsafe extension rejected at certification:")
        print(f"  {message[:160]}...")


if __name__ == "__main__":
    main()
