#!/usr/bin/env python3
"""The §4 loop experiment: a certified IP-header checksum routine.

Programs with loops need explicit loop invariants: "the PCC binary
contains a table that maps each backward-branch target to a loop
invariant".  This example certifies the paper's optimized checksum
(64-bit additions + folding), shows the invariant that travels inside the
binary, checks the result against RFC 1071, and reproduces the paper's
factor-of-two win over a straightforward "kernel C" version.

Run:  python examples/ip_checksum.py
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.alpha.machine import Machine
from repro.alpha.parser import parse_program
from repro.filters.checksum import (
    CHECKSUM_LOOP_PC,
    CHECKSUM_SOURCE,
    NAIVE_CHECKSUM_SOURCE,
    NAIVE_LOOP_PC,
    checksum_invariant,
    checksum_memory,
    checksum_policy,
    checksum_registers,
    naive_invariant,
    reference_checksum,
)
from repro.logic.pretty import pp_formula
from repro.pcc import certify, validate
from repro.perf.cost import ALPHA_175


def run(source: str, data: bytes):
    program = parse_program(source)
    machine = Machine(program, checksum_memory(data),
                      checksum_registers(data), cost_model=ALPHA_175)
    return machine.run()


def main() -> None:
    policy = checksum_policy()
    print("Loop invariant at the backward-branch target:")
    print(" ", pp_formula(checksum_invariant()))
    print()

    certified = certify(CHECKSUM_SOURCE, policy,
                        invariants={CHECKSUM_LOOP_PC: checksum_invariant()})
    report = validate(certified.binary.to_bytes(), policy)
    print(f"Optimized routine: {report.instructions} instructions, "
          f"{certified.binary.size}-byte PCC binary "
          f"(invariant table {len(certified.binary.invariants)} bytes), "
          f"validated in {report.validation_seconds * 1000:.1f} ms.")

    certify(NAIVE_CHECKSUM_SOURCE, policy,
            invariants={NAIVE_LOOP_PC: naive_invariant()})
    print("Naive 32-bit-at-a-time version: certified too (its own "
          "invariant).\n")

    rng = random.Random(4)
    print(f"{'bytes':>6} {'checksum':>9} {'optimized':>10} {'naive':>8} "
          f"{'speedup':>8}")
    for length in (20, 40, 60, 576, 1500):
        data = bytes(rng.randrange(256) for __ in range(length))
        want = reference_checksum(data)
        fast = run(CHECKSUM_SOURCE, data)
        slow = run(NAIVE_CHECKSUM_SOURCE, data)
        assert fast.value == slow.value == want
        print(f"{length:6} {want:#9x} {fast.cycles:9}c {slow.cycles:7}c "
              f"{slow.cycles / fast.cycles:7.2f}x")

    print("\nThe paper: '...quite fast, beating the standard C version in "
          "the OSF/1\nkernel by a factor of two' — the 64-bit loop halves "
          "the per-word cost.")


if __name__ == "__main__":
    main()
