#!/usr/bin/env python3
"""Tamper-proofness, demonstrated exhaustively (paper §2.3).

"Proof-carrying code is tamper-proof: the consumer can easily detect most
attempts by any malicious agent to forge a proof or modify the code.
Tampering can go undetected only if the adulterated code is still
guaranteed to respect the consumer-defined safety policy."

This example flips every single bit of a certified binary's code section
and samples the proof section, then reports the split between *rejected*
and *accepted-but-still-provably-safe* mutations.  For every accepted
mutation it re-runs the mutated program on the abstract machine — which
blocks on any safety violation — to show "harmless" really means safe.

Run:  python examples/tamper_detection.py
"""

import struct
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.alpha.abstract import AbstractMachine
from repro.alpha.machine import Memory
from repro.errors import ValidationError
from repro.pcc import certify, validate
from repro.pcc.container import _HEADER
from repro.vcgen.policy import resource_access_policy

SOURCE = """
    ADDQ r0, 8, r1
    LDQ  r0, 8(r0)
    LDQ  r2, -8(r1)
    ADDQ r0, 1, r0
    BEQ  r2, L1
    STQ  r0, 0(r1)
L1: RET
"""


def run_abstract(policy, program) -> None:
    """Execute under the policy's own semantics; raises on any violation."""
    memory = Memory()
    memory.map_region(0x1000, struct.pack("<QQ", 5, 41), writable=True,
                      name="table")
    registers = {0: 0x1000}
    can_read, can_write = policy.checkers(
        registers, lambda address: 5 if address == 0x1000 else 0)
    AbstractMachine(program, memory, can_read, can_write, registers).run()


def main() -> None:
    policy = resource_access_policy()
    certified = certify(SOURCE, policy)
    blob = certified.binary.to_bytes()
    code_start = _HEADER.size
    code_end = code_start + len(certified.binary.code)

    print(f"Certified binary: {certified.binary.size} bytes "
          f"({len(certified.binary.code)} code, "
          f"{len(certified.binary.proof)} proof).")
    print(f"\nFlipping all {(code_end - code_start) * 8} bits of the "
          f"native code section...")

    rejected = harmless = 0
    for position in range(code_start, code_end):
        for bit in range(8):
            mutated = bytearray(blob)
            mutated[position] ^= 1 << bit
            try:
                report = validate(bytes(mutated), policy)
            except ValidationError:
                rejected += 1
                continue
            # Accepted: the paper says this can only happen when the
            # mutated code still satisfies the policy.  Prove it by
            # running on the abstract machine (blocks on violations).
            run_abstract(policy, report.program)
            harmless += 1

    print(f"  rejected:                      {rejected}")
    print(f"  accepted (and verified safe):  {harmless}")

    print("\nSampling proof-section bit flips...")
    proof_start = code_end + len(certified.binary.relocation)
    proof_rejected = proof_accepted = 0
    for position in range(proof_start, len(blob),
                          max(1, (len(blob) - proof_start) // 200)):
        for bit in (0, 4):
            mutated = bytearray(blob)
            mutated[position] ^= 1 << bit
            try:
                validate(bytes(mutated), policy)
                proof_accepted += 1
            except ValidationError:
                proof_rejected += 1
    print(f"  rejected: {proof_rejected}, accepted: {proof_accepted} "
          f"(an accepted proof flip still proves the same predicate)")

    print("\nEvery mutation was either detected or provably harmless — "
          "no cryptography involved.")


if __name__ == "__main__":
    main()
