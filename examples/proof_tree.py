#!/usr/bin/env python3
"""Figure 6, regenerated: the formal safety proof of SP_r, as a tree.

The paper prints "a large fragment of the proof of the safety predicate"
for the §2 resource-access client, noting it "was generated automatically
by our PCC system".  So is ours — this script certifies the same program
and renders the proof the prover found, rule by rule, goal by goal.

Run:  python examples/proof_tree.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.logic.pretty import pp_formula
from repro.pcc import certify
from repro.proof.explain import explain_proof
from repro.proof.proofs import proof_rules_used, proof_size
from repro.vcgen.policy import resource_access_policy

SOURCE = """
    ADDQ r0, 8, r1    % Figure 5, verbatim
    LDQ  r0, 8(r0)
    LDQ  r2, -8(r1)
    ADDQ r0, 1, r0
    BEQ  r2, L1
    STQ  r0, 0(r1)
L1: RET
"""


def main() -> None:
    policy = resource_access_policy()
    certified = certify(SOURCE, policy)

    print("Safety predicate SP_r (after trivial simplifications):")
    print(" ", pp_formula(certified.predicate)[:500])
    print()
    print(f"Automatically generated proof: {proof_size(certified.proof)} "
          f"inference nodes, rules used:")
    for rule, count in sorted(proof_rules_used(certified.proof).items()):
        print(f"  {rule:14} x{count}")
    print()
    print("The proof tree (cf. the paper's Figure 6; shared subproofs")
    print("are numbered and back-referenced, exactly as transmitted):")
    print()
    print(explain_proof(certified.proof, certified.predicate,
                        max_depth=40))


if __name__ == "__main__":
    main()
