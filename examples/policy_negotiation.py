#!/usr/bin/env python3
"""Run-time safety-policy negotiation (paper §4 future work, implemented).

"Another possibility is to allow the consumer and producer to 'negotiate'
a safety policy at run time ... If the consumer determines that the
proposed policy implies some basic notion of safety, then it can allow the
producer to produce PCC binaries using the new policy."

A monitoring application wants its filters certified against a *simpler*
vocabulary than the kernel's full packet-filter policy: "the first 32
bytes of the packet are readable, full stop".  It sends the kernel the
proposed precondition together with a PCC proof that the kernel's own
guarantees imply it; the kernel validates that implication and from then
on accepts binaries certified under the simpler policy.

Run:  python examples/policy_negotiation.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import CertificationError, ValidationError
from repro.filters.policy import packet_filter_policy
from repro.logic.formulas import Forall, Implies, conj, eq, ge, lt, rd
from repro.logic.pretty import pp_formula
from repro.logic.terms import Var, add64, and64
from repro.pcc import accept_policy, certify, propose_policy, validate
from repro.vcgen.policy import word_identity


def headers_only_precondition():
    """The proposed vocabulary: 32 readable header bytes."""
    r1, i = Var("r1"), Var("i")
    guard = conj([ge(i, 0), lt(i, 32), eq(and64(i, 7), 0)])
    return conj([word_identity(r1),
                 Forall("i", Implies(guard, rd(add64(r1, i))))])


def main() -> None:
    kernel_policy = packet_filter_policy()
    proposed = headers_only_precondition()
    print("Proposed precondition:")
    print(" ", pp_formula(proposed), "\n")

    # -- producer: prove  BasePre => Proposed,  pack the proposal ----------
    proposal = propose_policy(kernel_policy, proposed)
    wire = proposal.to_bytes()
    print(f"Proposal packed: {len(wire)} bytes "
          f"(precondition + implication proof).")

    # -- consumer: validate the implication, adopt the policy ---------------
    negotiated = accept_policy(kernel_policy, wire)
    print(f"Kernel accepted; negotiated policy: {negotiated.name!r}\n")

    # -- the simpler vocabulary in action ------------------------------------
    ethertype_filter = """
        LDQ    r4, 8(r1)
        EXTWL  r4, 4, r4
        CMPEQ  r4, 8, r0
        RET
    """
    certified = certify(ethertype_filter, negotiated)
    report = validate(certified.binary.to_bytes(), negotiated)
    print(f"Filter certified under the negotiated policy "
          f"({report.proof_bytes}-byte proof) and validated in "
          f"{report.validation_seconds * 1000:.1f} ms.")

    # Narrowing is real: offset 40 was fine under the kernel policy but is
    # outside the negotiated 32-byte window.
    try:
        certify("LDQ r4, 40(r1)\nADDQ r4, 0, r0\nRET", negotiated)
    except CertificationError:
        print("A filter reading offset 40 is (correctly) uncertifiable "
              "under the negotiated policy.")

    # And a greedy proposal cannot even be constructed:
    r1, i = Var("r1"), Var("i")
    greedy = conj([word_identity(r1),
                   Forall("i", Implies(
                       conj([ge(i, 0), lt(i, 1 << 20),
                             eq(and64(i, 7), 0)]),
                       rd(add64(r1, i))))])
    try:
        propose_policy(kernel_policy, greedy)
    except CertificationError:
        print("A proposal asking for a megabyte of packet is "
              "(correctly) unprovable — negotiation grants vocabulary, "
              "never authority.")


if __name__ == "__main__":
    main()
