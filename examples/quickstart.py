#!/usr/bin/env python3
"""Quickstart: the paper's §2 worked example, end to end.

A kernel publishes the *resource-access* safety policy: untrusted code
gets the address of a (tag, data) table entry in r0; the tag is read-only
and the data word may be written only when the tag is non-zero.

An application hand-writes a DEC Alpha extension (Figure 5 of the paper —
scheduled, register-reusing, the works), certifies it into a PCC binary,
and ships the bytes.  The kernel validates the enclosed LF proof against
the safety predicate it recomputes from the received code, then runs the
extension natively — with zero run-time checks.

Run:  python examples/quickstart.py
"""

import struct
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.alpha.machine import Memory
from repro.errors import ValidationError
from repro.logic.pretty import pp_formula
from repro.pcc import CodeConsumer, CodeProducer
from repro.vcgen.policy import resource_access_policy

# The paper's Figure 5, verbatim (with its deliberate low-level tricks:
# speculative loads, register reuse, access through a different register
# than the precondition names).
EXTENSION_SOURCE = """
    ADDQ r0, 8, r1    % address of data in r1
    LDQ  r0, 8(r0)    % data in r0 (speculative)
    LDQ  r2, -8(r1)   % tag in r2
    ADDQ r0, 1, r0    % increment data (speculative)
    BEQ  r2, L1       % skip if tag == 0
    STQ  r0, 0(r1)    % write back data
L1: RET
"""


def main() -> None:
    # -- the code consumer publishes its policy -----------------------------
    policy = resource_access_policy()
    print("Safety policy:", policy.name)
    print("Precondition:", pp_formula(policy.precondition))
    print()

    # -- the untrusted producer certifies its extension ----------------------
    producer = CodeProducer(policy)
    result = producer.certify(EXTENSION_SOURCE)
    binary = result.binary
    print(f"Certified {len(result.program)} instructions.")
    print("PCC binary layout (cf. Figure 7):")
    for name, start, end in binary.layout().rows():
        print(f"  {name:12} {start:5} .. {end}")
    print()

    # -- the kernel validates and installs -----------------------------------
    consumer = CodeConsumer(policy)
    extension = consumer.install(binary.to_bytes())
    report = extension.report
    print(f"Validated in {report.validation_seconds * 1000:.1f} ms "
          f"(proof {report.proof_bytes} bytes, "
          f"relocation {report.relocation_bytes} bytes).")
    print()

    # -- native execution, no run-time checks --------------------------------
    for tag, data in ((5, 41), (0, 41)):
        memory = Memory()
        memory.map_region(0x1000, struct.pack("<QQ", tag, data),
                          writable=True, name="table")
        machine_result = extension.run(memory, registers={0: 0x1000})
        new_tag, new_data = struct.unpack("<QQ",
                                          bytes(memory.region("table")))
        verdict = "written" if new_data != data else "left alone"
        print(f"table entry tag={tag}: data {data} -> {new_data} "
              f"({verdict}, {machine_result.instructions} instructions)")

    # -- and the part that makes it PCC: tampering is caught -----------------
    blob = bytearray(binary.to_bytes())
    blob[24] ^= 0x01  # flip a bit inside the native code
    try:
        consumer.install(bytes(blob))
        print("\ntampered binary accepted?!  (should never happen)")
    except ValidationError as error:
        print(f"\nTampered binary rejected: {error}")


if __name__ == "__main__":
    main()
