"""Repo-root pytest configuration: make ``src/`` importable without an
installed package (offline environments cannot always pip-install)."""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
